"""Plan extraction: walk a layer tree once and emit a fused flat plan.

``compile_network`` lowers an eval-mode model into the plan IR of
:mod:`repro.nn.compile.plan`:

* **Fusion** — a ``Conv2D -> BatchNorm -> ReLU`` run (the Inception
  ``conv_bn_relu`` unit) lowers to a single :class:`ConvOp` whose GEMM
  output pass applies the folded batch-norm scale/shift and the ReLU
  clamp in place.  ``Dense -> ReLU`` and the two-layer prefixes fuse the
  same way.  Eval-identity ``Dropout`` disappears entirely.
* **Concat elimination** — each :class:`ParallelBranches` branch writes
  its final output directly into a channel slice of the concat buffer,
  so the merge costs nothing at run time.
* **Reshape elision** — ``Flatten`` / ``Reshape`` become slot view
  aliases, never ops.

Layers without a lowering raise :class:`UnsupportedLayerError`; backends
treat that as "this model stays on the interpreted fast path".
"""

from __future__ import annotations

import numpy as np

from repro.nn.compile import ops
from repro.nn.compile.plan import (
    CompiledNetwork,
    PlanBuilder,
    SlotRef,
    UnsupportedLayerError,
)
from repro.nn.compile.quantize import make_weight
from repro.nn.layers.activations import ReLU
from repro.nn.layers.base import Layer
from repro.nn.layers.batchnorm import BatchNorm
from repro.nn.layers.conv import Conv2D, conv_output_size
from repro.nn.layers.dense import Dense
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.flatten import Flatten, Reshape
from repro.nn.layers.merge import ParallelBranches
from repro.nn.layers.pooling import AvgPool2D, GlobalAvgPool2D, MaxPool2D
from repro.nn.layers.sequential import Sequential
from repro.nn.recurrent.bidirectional import BidirectionalLSTM

#: (concat slot ref, channel range) a branch-final op should write into.
Dest = tuple[SlotRef, int, int]


def _unsupported(layer: Layer) -> UnsupportedLayerError:
    return UnsupportedLayerError(
        f"no compiled lowering for {type(layer).__name__} ({layer.name!r})")


# -- pure shape inference ------------------------------------------------

def _conv_out_shape(layer, in_shape: tuple[int, ...],
                    out_channels: int) -> tuple[int, int, int]:
    c, h, w = in_shape
    kh, kw = layer.kernel_size if isinstance(layer, Conv2D) else layer.pool_size
    sh, sw = layer.stride
    ph, pw = layer.padding
    return (out_channels, conv_output_size(h, kh, sh, ph),
            conv_output_size(w, kw, sw, pw))


def infer_shape(layer: Layer, in_shape: tuple[int, ...]) -> tuple[int, ...]:
    """Per-sample output shape of ``layer`` on per-sample ``in_shape``."""
    if isinstance(layer, Sequential):
        for sub in layer.layers:
            in_shape = infer_shape(sub, in_shape)
        return in_shape
    if isinstance(layer, Conv2D):
        return _conv_out_shape(layer, in_shape, layer.out_channels)
    if isinstance(layer, (MaxPool2D, AvgPool2D)):
        return _conv_out_shape(layer, in_shape, in_shape[0])
    if isinstance(layer, GlobalAvgPool2D):
        return (in_shape[0],)
    if isinstance(layer, Dense):
        return (layer.out_features,)
    if isinstance(layer, (BatchNorm, ReLU, Dropout)):
        return in_shape
    if isinstance(layer, Flatten):
        return (int(np.prod(in_shape)),)
    if isinstance(layer, Reshape):
        return layer.target_shape
    if isinstance(layer, ParallelBranches):
        shapes = [infer_shape(b, in_shape) for b in layer.branches]
        axis = layer.axis - 1          # per-sample axis
        total = sum(s[axis] for s in shapes)
        out = list(shapes[0])
        out[axis] = total
        return tuple(out)
    if isinstance(layer, BidirectionalLSTM):
        two_h = 2 * layer.hidden_size
        if layer.return_sequences:
            return (in_shape[0], two_h)
        return (two_h,)
    raise _unsupported(layer)


# -- lowering ------------------------------------------------------------

class _Extractor:
    def __init__(self, builder: PlanBuilder, *, quantize: bool) -> None:
        self.builder = builder
        self.quantize = quantize

    # Every ``_lower_*`` returns ``(out_ref, out_shape)``.  When ``dest``
    # is set the layer is branch-final: it must leave its output in the
    # dest channel slice (directly, or via the generic copy fallback).

    def lower(self, layer: Layer, in_ref: SlotRef, in_shape: tuple[int, ...],
              dest: Dest | None = None):
        if isinstance(layer, Sequential):
            return self._lower_sequential(layer, in_ref, in_shape, dest)
        if isinstance(layer, ParallelBranches):
            return self._with_copy_fallback(
                self._lower_parallel, layer, in_ref, in_shape, dest)
        if isinstance(layer, Conv2D):
            return self._lower_conv(layer, None, None, in_ref, in_shape, dest)
        if isinstance(layer, Dense):
            return self._lower_dense(layer, None, in_ref, in_shape, dest)
        if isinstance(layer, (MaxPool2D, AvgPool2D)):
            return self._lower_pool(layer, in_ref, in_shape, dest)
        if isinstance(layer, GlobalAvgPool2D):
            return self._with_copy_fallback(
                self._lower_gap, layer, in_ref, in_shape, dest)
        if isinstance(layer, BatchNorm):
            return self._with_copy_fallback(
                self._lower_batchnorm, layer, in_ref, in_shape, dest,
                relu=None)
        if isinstance(layer, ReLU):
            return self._with_copy_fallback(
                self._lower_relu, layer, in_ref, in_shape, dest)
        if isinstance(layer, (Flatten, Reshape)):
            if dest is not None:
                # A pure view cannot retarget storage; stage then copy.
                return self._with_copy_fallback(
                    self._lower_view, layer, in_ref, in_shape, dest)
            return self._lower_view(layer, in_ref, in_shape)
        if isinstance(layer, BidirectionalLSTM):
            return self._with_copy_fallback(
                self._lower_bilstm, layer, in_ref, in_shape, dest)
        raise _unsupported(layer)

    def _with_copy_fallback(self, fn, layer, in_ref, in_shape,
                            dest: Dest | None, **kwargs):
        """Run a dest-unaware lowering, copying into ``dest`` if needed."""
        out_ref, out_shape = fn(layer, in_ref, in_shape, **kwargs)
        if dest is not None:
            ref, c0, c1 = dest
            self.builder.emit(ops.CopyOp(
                layer=layer.name, in_ref=out_ref, out_ref=ref,
                out_channels=(c0, c1)))
            return ref, out_shape
        return out_ref, out_shape

    # -- structural layers ------------------------------------------------

    def _lower_sequential(self, seq: Sequential, in_ref, in_shape,
                          dest: Dest | None):
        # Eval-identity dropout vanishes before the fusion peephole runs,
        # so Conv -> BN -> Dropout -> ReLU still fuses.
        layers = [sub for sub in seq.layers if not isinstance(sub, Dropout)]
        i, count = 0, len(layers)
        ref, shape = in_ref, in_shape
        while i < count:
            layer = layers[i]
            fused = 1
            final: Dest | None = None
            if i + fused == count:
                final = dest
            if isinstance(layer, Conv2D):
                bn = relu = None
                if (i + fused < count
                        and isinstance(layers[i + fused], BatchNorm)):
                    bn = layers[i + fused]
                    fused += 1
                if i + fused < count and isinstance(layers[i + fused], ReLU):
                    relu = layers[i + fused]
                    fused += 1
                final = dest if i + fused == count else None
                ref, shape = self._lower_conv(layer, bn, relu, ref, shape,
                                              final)
            elif isinstance(layer, Dense):
                relu = None
                if i + fused < count and isinstance(layers[i + fused], ReLU):
                    relu = layers[i + fused]
                    fused += 1
                final = dest if i + fused == count else None
                ref, shape = self._lower_dense(layer, relu, ref, shape, final)
            elif isinstance(layer, BatchNorm):
                relu = None
                if i + fused < count and isinstance(layers[i + fused], ReLU):
                    relu = layers[i + fused]
                    fused += 1
                final = dest if i + fused == count else None
                ref, shape = self._with_copy_fallback(
                    self._lower_batchnorm, layer, ref, shape, final,
                    relu=relu)
            else:
                ref, shape = self.lower(layer, ref, shape, final)
            i += fused
        if dest is not None and count == 0:
            raise UnsupportedLayerError(
                f"{seq.name}: empty branch cannot target a concat slice")
        return ref, shape

    def _lower_parallel(self, par: ParallelBranches, in_ref, in_shape):
        if par.axis != 1:
            raise _unsupported(par)
        shapes = [infer_shape(b, in_shape) for b in par.branches]
        ref0 = list(shapes[0])
        for s in shapes[1:]:
            if list(s[1:]) != ref0[1:]:
                raise UnsupportedLayerError(
                    f"{par.name}: branch shapes disagree off-axis: {shapes}")
        total = sum(s[0] for s in shapes)
        out_shape = (total,) + tuple(ref0[1:])
        out_ref = self.builder.new_slot(out_shape)
        c0 = 0
        for branch, shape in zip(par.branches, shapes):
            c1 = c0 + shape[0]
            self.lower(branch, in_ref, in_shape, (out_ref, c0, c1))
            c0 = c1
        return out_ref, out_shape

    def _lower_view(self, layer, in_ref, in_shape):
        if isinstance(layer, Flatten):
            shape = (int(np.prod(in_shape)),)
        else:
            shape = layer.target_shape
        return self.builder.view(in_ref, shape), shape

    # -- compute layers ---------------------------------------------------

    def _epilogue(self, bn: BatchNorm | None, relu: ReLU | None):
        scale = shift = None
        if bn is not None:
            scale, shift = bn.eval_scale_shift()
        fused = [layer.name for layer in (bn, relu) if layer is not None]
        return scale, shift, relu is not None, fused

    def _dest_or_slot(self, dest: Dest | None, shape):
        if dest is not None:
            ref, c0, c1 = dest
            return ref, (c0, c1)
        return self.builder.new_slot(shape), None

    def _lower_conv(self, conv: Conv2D, bn, relu, in_ref, in_shape,
                    dest: Dest | None):
        out_shape = _conv_out_shape(conv, in_shape, conv.out_channels)
        scale, shift, has_relu, fused = self._epilogue(bn, relu)
        out_ref, out_channels = self._dest_or_slot(dest, out_shape)
        c, h, w = in_shape
        ph, pw = conv.padding
        pad_ref = cols_ref = None
        general = (conv.kernel_size != (1, 1) or conv.stride != (1, 1)
                   or conv.padding != (0, 0))
        if general:
            if ph or pw:
                pad_ref = self.builder.new_slot(
                    (c, h + 2 * ph, w + 2 * pw), pinned=True)
            kh, kw = conv.kernel_size
            cols_ref = self.builder.new_slot(
                (c * kh * kw, out_shape[1] * out_shape[2]))
        self.builder.emit(ops.ConvOp(
            layer=conv.name, fused=tuple([conv.name] + fused),
            weight=make_weight(conv.flat_weight(), quantize=self.quantize,
                               channel_axis=0),
            bias=None if conv.bias is None else conv.bias.value.copy(),
            scale=scale, shift=shift, relu=has_relu,
            kernel=conv.kernel_size, stride=conv.stride, pad=conv.padding,
            in_shape=in_shape, out_shape=out_shape,
            in_ref=in_ref, out_ref=out_ref, out_channels=out_channels,
            pad_ref=pad_ref, cols_ref=cols_ref))
        return out_ref, out_shape

    def _lower_dense(self, dense: Dense, relu, in_ref, in_shape,
                     dest: Dest | None):
        if len(in_shape) != 1 or in_shape[0] != dense.in_features:
            raise UnsupportedLayerError(
                f"{dense.name}: expected ({dense.in_features},) input, "
                f"got {in_shape}")
        out_shape = (dense.out_features,)
        scale, shift, has_relu, fused = self._epilogue(None, relu)
        out_ref, out_channels = self._dest_or_slot(dest, out_shape)
        self.builder.emit(ops.DenseOp(
            layer=dense.name, fused=tuple([dense.name] + fused),
            weight=make_weight(dense.weight.value, quantize=self.quantize,
                               channel_axis=1),
            bias=None if dense.bias is None else dense.bias.value.copy(),
            scale=scale, shift=shift, relu=has_relu,
            in_features=dense.in_features, out_features=dense.out_features,
            in_ref=in_ref, out_ref=out_ref, out_channels=out_channels))
        return out_ref, out_shape

    def _lower_pool(self, pool, in_ref, in_shape, dest: Dest | None):
        out_shape = _conv_out_shape(pool, in_shape, in_shape[0])
        out_ref, out_channels = self._dest_or_slot(dest, out_shape)
        c, h, w = in_shape
        ph, pw = pool.padding
        pad_ref = None
        if ph or pw or in_ref.slot == 0:
            # Padded source buffer; also used (padless) to stage the raw
            # network input so tap views can be fixed at bind time.
            pad_ref = self.builder.new_slot(
                (c, h + 2 * ph, w + 2 * pw), pinned=bool(ph or pw))
        op_cls = ops.MaxPoolOp if isinstance(pool, MaxPool2D) else ops.AvgPoolOp
        extra = {}
        if op_cls is ops.AvgPoolOp and tuple(pool.stride) == (1, 1):
            # Stride-1 pooling sums contiguous flat-shifted views of the
            # source buffer instead of short-row strided taps; the sums
            # need a scratch accumulator the size of that buffer.
            acc_shape = ((c, h + 2 * ph, w + 2 * pw) if pad_ref is not None
                         else in_shape)
            extra["acc_ref"] = self.builder.new_slot(acc_shape)
        self.builder.emit(op_cls(
            layer=pool.name, kernel=pool.pool_size, stride=pool.stride,
            pad=pool.padding, in_shape=in_shape, out_shape=out_shape,
            in_ref=in_ref, out_ref=out_ref, out_channels=out_channels,
            pad_ref=pad_ref, **extra))
        return out_ref, out_shape

    def _lower_gap(self, gap: GlobalAvgPool2D, in_ref, in_shape):
        out_shape = (in_shape[0],)
        out_ref = self.builder.new_slot(out_shape)
        self.builder.emit(ops.GlobalAvgPoolOp(
            layer=gap.name, in_ref=in_ref, out_ref=out_ref))
        return out_ref, out_shape

    def _lower_batchnorm(self, bn: BatchNorm, in_ref, in_shape, *,
                         relu: ReLU | None):
        if len(in_shape) not in (1, 3):
            raise _unsupported(bn)
        scale, shift = bn.eval_scale_shift()
        fused = [bn.name] + ([relu.name] if relu is not None else [])
        out_ref = self.builder.new_slot(in_shape)
        self.builder.emit(ops.ScaleShiftOp(
            layer=bn.name, fused=tuple(fused), scale=scale, shift=shift,
            relu=relu is not None, in_ref=in_ref, out_ref=out_ref,
            channels_first=len(in_shape) == 3))
        return out_ref, in_shape

    def _lower_relu(self, relu: ReLU, in_ref, in_shape):
        out_ref = self.builder.new_slot(in_shape)
        self.builder.emit(ops.ReluOp(
            layer=relu.name, in_ref=in_ref, out_ref=out_ref))
        return out_ref, in_shape

    def _lower_bilstm(self, bilstm: BidirectionalLSTM, in_ref, in_shape):
        if len(in_shape) != 2:
            raise UnsupportedLayerError(
                f"{bilstm.name}: expected (time, features) input, "
                f"got {in_shape}")
        t, f = in_shape
        if f != bilstm.forward_lstm.input_size:
            raise UnsupportedLayerError(
                f"{bilstm.name}: expected {bilstm.forward_lstm.input_size} "
                f"features, got {f}")
        h = bilstm.hidden_size
        w_x_cat, w_h_stack, bias_cat = bilstm.stacked_weights()
        out_shape = (t, 2 * h) if bilstm.return_sequences else (2 * h,)
        proj_ref = self.builder.new_slot((t, 8 * h))
        out_ref = self.builder.new_slot(out_shape)
        self.builder.emit(ops.BiLstmOp(
            layer=bilstm.name,
            fused=(bilstm.name, bilstm.forward_lstm.name,
                   bilstm.backward_lstm.name),
            w_x_cat=w_x_cat, w_h_stack=w_h_stack, bias_cat=bias_cat,
            hidden=h, steps=t, features=f,
            return_sequences=bilstm.return_sequences,
            in_ref=in_ref, proj_ref=proj_ref, out_ref=out_ref))
        return out_ref, out_shape


def compile_network(network: Layer, input_shape: tuple[int, ...], *,
                    quantize: bool = False,
                    label: str | None = None) -> CompiledNetwork:
    """Compile an eval-mode layer tree into a :class:`CompiledNetwork`.

    ``input_shape`` is the per-sample input shape (no batch dimension).
    Raises :class:`UnsupportedLayerError` when any layer has no lowering.
    """
    builder = PlanBuilder(tuple(int(d) for d in input_shape))
    extractor = _Extractor(builder, quantize=bool(quantize))
    out_ref, _ = extractor.lower(network, builder.input_ref(),
                                 builder.slots[0].shape)
    if out_ref.slot == 0:
        raise UnsupportedLayerError(
            "plan is a pure view of the input; nothing to compile")
    return builder.finish(out_ref, label=label or network.name)
