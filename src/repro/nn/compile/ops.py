"""Fused op implementations for compiled execution plans.

Every op here mirrors the arithmetic of the interpreted fast path
*exactly* — same GEMM shapes or bit-stable restructurings (column-
concatenated kernels, batched 3-D matmuls, strided output views), same
elementwise expression order — so a float32 plan's outputs are bitwise
identical to the layer-by-layer fast path.  What changes is everything
around the arithmetic: outputs land in preplanned arena views instead of
fresh allocations, batch-norm + ReLU run as an in-place epilogue on the
GEMM output instead of two extra array passes, and per-step LSTM views
are presliced at bind time instead of per call.
"""

from __future__ import annotations

import numpy as np

from repro.nn.compile.plan import BindContext, PlanOp, SlotRef
from repro.nn.compile.quantize import PlanWeight

_ZERO = np.float32(0.0)
_ONE = np.float32(1.0)


def _strided_window_view(src: np.ndarray, kernel: tuple[int, int],
                         stride: tuple[int, int],
                         out_hw: tuple[int, int]) -> np.ndarray:
    """The (n, c, kh, kw, oh, ow) sliding-window view of an NCHW array."""
    n, c = src.shape[:2]
    kh, kw = kernel
    sh, sw = stride
    oh, ow = out_hw
    sn, sc, sh_b, sw_b = src.strides
    return np.lib.stride_tricks.as_strided(
        src,
        shape=(n, c, kh, kw, oh, ow),
        strides=(sn, sc, sh_b, sw_b, sh_b * sh, sw_b * sw),
        writeable=False,
    )


def _view_reshape(array: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reshape that must stay a view (writing to a silent copy is a bug)."""
    out = array.reshape(shape)
    if out.size and not np.shares_memory(out, array):
        raise AssertionError("plan bug: destination reshape copied")
    return out


class _EpilogueMixin:
    """Shared bias / scale-shift / ReLU output-pass fusion."""

    def _init_epilogue(self, bias, scale, shift, relu: bool) -> None:
        self.bias = None if bias is None else np.asarray(bias, np.float32)
        self.scale = None if scale is None else np.asarray(scale, np.float32)
        self.shift = None if shift is None else np.asarray(shift, np.float32)
        self.relu = bool(relu)

    def _bind_epilogue(self, dest: np.ndarray, *, channels_first: bool):
        """An in-place epilogue closure over ``dest`` (None when empty).

        ``channels_first`` reshapes the per-channel factors for NCHW
        output; dense output broadcasts them directly.
        """
        def factor(vec):
            if vec is None:
                return None
            return vec[:, None, None] if channels_first else vec
        bias = factor(self.bias)
        scale, shift = factor(self.scale), factor(self.shift)
        relu = self.relu
        if bias is None and scale is None and not relu:
            return None

        def run() -> None:
            if bias is not None:
                np.add(dest, bias, out=dest)
            if scale is not None:
                np.multiply(dest, scale, out=dest)
                np.add(dest, shift, out=dest)
            if relu:
                np.maximum(dest, _ZERO, out=dest)
        return run


class ConvOp(_EpilogueMixin, PlanOp):
    """im2col conv GEMM with a fused scale-shift-activation epilogue."""

    kind = "conv"

    def __init__(self, *, layer: str, fused: tuple[str, ...],
                 weight: PlanWeight, bias, scale, shift, relu: bool,
                 kernel: tuple[int, int], stride: tuple[int, int],
                 pad: tuple[int, int], in_shape: tuple[int, int, int],
                 out_shape: tuple[int, int, int], in_ref: SlotRef,
                 out_ref: SlotRef, out_channels: tuple[int, int] | None,
                 pad_ref: SlotRef | None, cols_ref: SlotRef | None) -> None:
        super().__init__(layer=layer, fused=fused)
        self.weight = weight
        self._init_epilogue(bias, scale, shift, relu)
        self.kernel, self.stride, self.pad = kernel, stride, pad
        self.in_shape, self.out_shape = in_shape, out_shape
        self.in_ref, self.out_ref = in_ref, out_ref
        self.out_channels = out_channels
        self.pad_ref, self.cols_ref = pad_ref, cols_ref

    def slot_refs(self) -> list[SlotRef]:
        refs = [self.in_ref, self.out_ref]
        if self.pad_ref is not None:
            refs.append(self.pad_ref)
        if self.cols_ref is not None:
            refs.append(self.cols_ref)
        return refs

    def bind(self, rt: BindContext):
        n = rt.n
        c, h, w = self.in_shape
        oc, oh, ow = self.out_shape
        kh, kw = self.kernel
        sh, sw = self.stride
        ph, pw = self.pad
        flat_w = self.weight.materialize()
        dest4 = rt.dest(self.out_ref, self.out_channels)
        dest3 = _view_reshape(dest4, (n, oc, oh * ow))
        get_in = rt.reader(self.in_ref)
        epilogue = self._bind_epilogue(dest4, channels_first=True)

        if (kh, kw) == (1, 1) and (sh, sw) == (1, 1) and (ph, pw) == (0, 0):
            def run() -> None:
                x = get_in()
                np.matmul(flat_w, x.reshape(n, c, h * w), out=dest3)
                if epilogue is not None:
                    epilogue()
            return run

        cols = rt.view(self.cols_ref)
        cols6 = cols.reshape(n, c, kh, kw, oh, ow)
        if ph or pw:
            padbuf = rt.view(self.pad_ref)   # pinned: borders stay zero
            interior = padbuf[:, :, ph:ph + h, pw:pw + w]
            window = _strided_window_view(padbuf, self.kernel, self.stride,
                                          (oh, ow))

            def run() -> None:
                interior[...] = get_in()
                cols6[...] = window
                np.matmul(flat_w, cols, out=dest3)
                if epilogue is not None:
                    epilogue()
            return run

        if self.in_ref.slot != 0:
            # Arena-resident source: the window view is fixed per binding.
            window = _strided_window_view(rt.view(self.in_ref), self.kernel,
                                          self.stride, (oh, ow))

            def run() -> None:
                cols6[...] = window
                np.matmul(flat_w, cols, out=dest3)
                if epilogue is not None:
                    epilogue()
            return run

        def run() -> None:
            cols6[...] = _strided_window_view(get_in(), self.kernel,
                                              self.stride, (oh, ow))
            np.matmul(flat_w, cols, out=dest3)
            if epilogue is not None:
                epilogue()
        return run


class DenseOp(_EpilogueMixin, PlanOp):
    """2-D GEMM with the same fused epilogue as :class:`ConvOp`."""

    kind = "dense"

    def __init__(self, *, layer: str, fused: tuple[str, ...],
                 weight: PlanWeight, bias, scale, shift, relu: bool,
                 in_features: int, out_features: int, in_ref: SlotRef,
                 out_ref: SlotRef,
                 out_channels: tuple[int, int] | None = None) -> None:
        super().__init__(layer=layer, fused=fused)
        self.weight = weight
        self._init_epilogue(bias, scale, shift, relu)
        self.in_features, self.out_features = in_features, out_features
        self.in_ref, self.out_ref = in_ref, out_ref
        self.out_channels = out_channels

    def slot_refs(self) -> list[SlotRef]:
        return [self.in_ref, self.out_ref]

    def bind(self, rt: BindContext):
        w = self.weight.materialize()
        dest2 = rt.dest(self.out_ref, self.out_channels)
        get_in = rt.reader(self.in_ref)
        epilogue = self._bind_epilogue(dest2, channels_first=False)

        def run() -> None:
            np.matmul(get_in(), w, out=dest2)
            if epilogue is not None:
                epilogue()
        return run


class _PoolOpBase(PlanOp):
    def __init__(self, *, layer: str, kernel: tuple[int, int],
                 stride: tuple[int, int], pad: tuple[int, int],
                 in_shape: tuple[int, int, int],
                 out_shape: tuple[int, int, int], in_ref: SlotRef,
                 out_ref: SlotRef, out_channels: tuple[int, int] | None,
                 pad_ref: SlotRef | None) -> None:
        super().__init__(layer=layer)
        self.kernel, self.stride, self.pad = kernel, stride, pad
        self.in_shape, self.out_shape = in_shape, out_shape
        self.in_ref, self.out_ref = in_ref, out_ref
        self.out_channels = out_channels
        self.pad_ref = pad_ref

    def slot_refs(self) -> list[SlotRef]:
        refs = [self.in_ref, self.out_ref]
        if self.pad_ref is not None:
            refs.append(self.pad_ref)
        return refs

    def _bind_taps(self, rt: BindContext):
        """(acc, interior_copy_or_None, per-tap source views)."""
        _, h, w = self.in_shape
        _, oh, ow = self.out_shape
        kh, kw = self.kernel
        sh, sw = self.stride
        ph, pw = self.pad
        acc = rt.dest(self.out_ref, self.out_channels)
        get_in = rt.reader(self.in_ref)
        if ph or pw:
            padbuf = rt.view(self.pad_ref)
            interior = padbuf[:, :, ph:ph + h, pw:pw + w]

            def fill() -> None:
                interior[...] = get_in()
            src = padbuf
        elif self.in_ref.slot == 0:
            # Pool directly on the raw network input: stage it into its
            # own padless buffer so the taps stay fixed bind-time views.
            padbuf = rt.view(self.pad_ref)

            def fill() -> None:
                padbuf[...] = get_in()
            src = padbuf
        else:
            fill = None
            src = rt.view(self.in_ref)
        taps = [src[:, :, i:i + sh * oh:sh, j:j + sw * ow:sw]
                for i in range(kh) for j in range(kw)]
        return acc, fill, taps


class MaxPoolOp(_PoolOpBase):
    kind = "maxpool"

    def bind(self, rt: BindContext):
        acc, fill, taps = self._bind_taps(rt)
        first, rest = taps[0], taps[1:]

        def run() -> None:
            if fill is not None:
                fill()
            acc[...] = first
            for tap in rest:
                np.maximum(acc, tap, out=acc)
        return run


class AvgPoolOp(_PoolOpBase):
    kind = "avgpool"

    def __init__(self, *, acc_ref: SlotRef | None = None, **kwargs) -> None:
        super().__init__(**kwargs)
        self.acc_ref = acc_ref

    def slot_refs(self) -> list[SlotRef]:
        refs = super().slot_refs()
        if self.acc_ref is not None:
            refs.append(self.acc_ref)
        return refs

    def _bind_flat(self, rt: BindContext):
        """Contiguous-tap kernel for stride-1 pooling, or None.

        At stride 1 over a C-contiguous source buffer, the tap starting
        at kernel offset ``(i, j)`` is the whole flattened buffer shifted
        by ``i * W + j`` elements — the shift is uniform across samples
        and channels because every (sample, channel) plane occupies a
        contiguous block.  Summing those shifted flat views visits each
        output element with the exact operand values and add order of the
        strided-tap loop (positions past each plane's last window start
        accumulate junk that the output view never reads), but every
        ``np.add`` runs over one long contiguous pair instead of
        kernel-width rows, which is several times faster on the small
        feature maps this network pools.
        """
        _, h, w = self.in_shape
        _, oh, ow = self.out_shape
        kh, kw = self.kernel
        ph, pw = self.pad
        get_in = rt.reader(self.in_ref)
        if self.pad_ref is not None:
            padbuf = rt.view(self.pad_ref)
            if ph or pw:
                interior = padbuf[:, :, ph:ph + h, pw:pw + w]

                def fill() -> None:
                    interior[...] = get_in()
            else:
                def fill() -> None:
                    padbuf[...] = get_in()
            src = padbuf
        else:
            fill = None
            src = rt.view(self.in_ref)
        if not src.flags["C_CONTIGUOUS"]:
            return None
        width = src.shape[3]
        flat_src = src.reshape(-1)
        span = flat_src.size - ((kh - 1) * width + (kw - 1))
        taps = [flat_src[i * width + j:i * width + j + span]
                for i in range(kh) for j in range(kw)]
        acc = rt.view(self.acc_ref)
        acc_run = acc.reshape(-1)[:span]
        pooled = acc.reshape(src.shape)[:, :, :oh, :ow]
        return fill, acc_run, taps, pooled

    def bind(self, rt: BindContext):
        kh, kw = self.kernel
        inv = np.float32(1.0 / (kh * kw))
        flat = self._bind_flat(rt) if self.acc_ref is not None else None
        if flat is not None:
            fill, acc_run, taps, pooled = flat
            dest = rt.dest(self.out_ref, self.out_channels)

            def run() -> None:
                if fill is not None:
                    fill()
                acc_run.fill(0.0)
                for tap in taps:
                    np.add(acc_run, tap, out=acc_run)
                np.multiply(pooled, inv, out=dest)
            return run

        acc, fill, taps = self._bind_taps(rt)

        def run() -> None:
            if fill is not None:
                fill()
            acc.fill(0.0)
            for tap in taps:
                np.add(acc, tap, out=acc)
            np.multiply(acc, inv, out=acc)
        return run


class GlobalAvgPoolOp(PlanOp):
    kind = "gap"

    def __init__(self, *, layer: str, in_ref: SlotRef,
                 out_ref: SlotRef) -> None:
        super().__init__(layer=layer)
        self.in_ref, self.out_ref = in_ref, out_ref

    def slot_refs(self) -> list[SlotRef]:
        return [self.in_ref, self.out_ref]

    def bind(self, rt: BindContext):
        dest = rt.view(self.out_ref)
        get_in = rt.reader(self.in_ref)

        def run() -> None:
            np.mean(get_in(), axis=(2, 3), out=dest)
        return run


class ScaleShiftOp(PlanOp):
    """Standalone eval batch-norm (one not preceded by a GEMM to fuse into)."""

    kind = "scale_shift"

    def __init__(self, *, layer: str, fused: tuple[str, ...], scale, shift,
                 relu: bool, in_ref: SlotRef, out_ref: SlotRef,
                 channels_first: bool) -> None:
        super().__init__(layer=layer, fused=fused)
        self.scale = np.asarray(scale, np.float32)
        self.shift = np.asarray(shift, np.float32)
        self.relu = bool(relu)
        self.in_ref, self.out_ref = in_ref, out_ref
        self.channels_first = channels_first

    def slot_refs(self) -> list[SlotRef]:
        return [self.in_ref, self.out_ref]

    def bind(self, rt: BindContext):
        dest = rt.view(self.out_ref)
        get_in = rt.reader(self.in_ref)
        scale = (self.scale[:, None, None] if self.channels_first
                 else self.scale)
        shift = (self.shift[:, None, None] if self.channels_first
                 else self.shift)
        relu = self.relu

        def run() -> None:
            np.multiply(get_in(), scale, out=dest)
            np.add(dest, shift, out=dest)
            if relu:
                np.maximum(dest, _ZERO, out=dest)
        return run


class ReluOp(PlanOp):
    kind = "relu"

    def __init__(self, *, layer: str, in_ref: SlotRef,
                 out_ref: SlotRef) -> None:
        super().__init__(layer=layer)
        self.in_ref, self.out_ref = in_ref, out_ref

    def slot_refs(self) -> list[SlotRef]:
        return [self.in_ref, self.out_ref]

    def bind(self, rt: BindContext):
        dest = rt.view(self.out_ref)
        get_in = rt.reader(self.in_ref)

        def run() -> None:
            np.maximum(get_in(), _ZERO, out=dest)
        return run


class CopyOp(PlanOp):
    """Stage a slot into a channel slice of another (branch-final fallback
    for lowerings that cannot write a sliced destination directly)."""

    kind = "copy"

    def __init__(self, *, layer: str, in_ref: SlotRef, out_ref: SlotRef,
                 out_channels: tuple[int, int]) -> None:
        super().__init__(layer=layer)
        self.in_ref, self.out_ref = in_ref, out_ref
        self.out_channels = out_channels

    def slot_refs(self) -> list[SlotRef]:
        return [self.in_ref, self.out_ref]

    def bind(self, rt: BindContext):
        dest = rt.dest(self.out_ref, self.out_channels)
        get_in = rt.reader(self.in_ref)

        def run() -> None:
            dest[...] = get_in()
        return run


class BiLstmOp(PlanOp):
    """Bidirectional LSTM as one stacked-GEMM recurrence.

    Both directions' input projections run as a single ``(n*t, 2*4h)``
    GEMM against the column-concatenated kernels, and each timestep's
    gate matmul runs both directions at once as a ``(2, n, h) @
    (2, h, 4h)`` batched matmul.  The elementwise gate math follows the
    interpreted fast path expression for expression (one sigmoid pass
    over the whole gate block, tanh overwriting the cell-gate columns),
    so float32 results are bitwise identical while the Python-level step
    loop runs once instead of twice.
    """

    kind = "bilstm"

    def __init__(self, *, layer: str, fused: tuple[str, ...],
                 w_x_cat: np.ndarray, w_h_stack: np.ndarray,
                 bias_cat: np.ndarray, hidden: int, steps: int,
                 features: int, return_sequences: bool, in_ref: SlotRef,
                 proj_ref: SlotRef, out_ref: SlotRef) -> None:
        super().__init__(layer=layer, fused=fused)
        self.w_x_cat = np.ascontiguousarray(w_x_cat, dtype=np.float32)
        self.w_h_stack = np.ascontiguousarray(w_h_stack, dtype=np.float32)
        self.bias_cat = np.ascontiguousarray(bias_cat, dtype=np.float32)
        self.hidden, self.steps, self.features = hidden, steps, features
        self.return_sequences = bool(return_sequences)
        self.in_ref, self.proj_ref, self.out_ref = in_ref, proj_ref, out_ref

    def slot_refs(self) -> list[SlotRef]:
        return [self.in_ref, self.proj_ref, self.out_ref]

    def bind(self, rt: BindContext):
        n = rt.n
        h, t, f = self.hidden, self.steps, self.features
        four_h = 4 * h
        proj2 = rt.view(SlotRef(self.proj_ref.slot, (t * 2 * four_h,))
                        ).reshape(n * t, 2 * four_h)
        proj3 = proj2.reshape(n, t, 2 * four_h)
        get_in = rt.reader(self.in_ref)
        w_x, w_h, bias = self.w_x_cat, self.w_h_stack, self.bias_cat
        # Per-step projection/output views, presliced once.  Forward reads
        # step s, backward reads step t-1-s (its input arrives reversed in
        # the interpreted path); with return_sequences the backward hidden
        # for input index t-1-s is written straight to that index, which
        # is exactly the interpreter's collect-then-re-reverse result.
        p_fwd = [proj3[:, s, :four_h] for s in range(t)]
        p_bwd = [proj3[:, t - 1 - s, four_h:] for s in range(t)]
        out = rt.view(self.out_ref)
        if self.return_sequences:
            o_fwd = [out[:, s, :h] for s in range(t)]
            o_bwd = [out[:, t - 1 - s, h:] for s in range(t)]
        # Recurrent state and gate buffers: O(n*h), owned by the binding.
        h_st = np.empty((2, n, h), dtype=np.float32)
        c_st = np.empty((2, n, h), dtype=np.float32)
        z = np.empty((2, n, four_h), dtype=np.float32)
        sig = np.empty((2, n, four_h), dtype=np.float32)
        g_gate = np.empty((2, n, h), dtype=np.float32)
        tmp = np.empty((2, n, h), dtype=np.float32)
        steps = range(t)
        return_sequences = self.return_sequences

        def run() -> None:
            x2 = get_in().reshape(n * t, f)
            np.matmul(x2, w_x, out=proj2)
            np.add(proj2, bias, out=proj2)
            h_st.fill(0.0)
            c_st.fill(0.0)
            for s in steps:
                np.matmul(h_st, w_h, out=z)
                z[0] += p_fwd[s]
                z[1] += p_bwd[s]
                # sigmoid over every gate column; [i, f, g, o] layout —
                # the cell-gate block is then overwritten by tanh.
                np.negative(z, out=sig)
                np.exp(sig, out=sig)
                np.add(sig, _ONE, out=sig)
                np.divide(_ONE, sig, out=sig)
                np.tanh(z[:, :, 2 * h:3 * h], out=g_gate)
                # c = f * c + i * g
                np.multiply(sig[:, :, h:2 * h], c_st, out=c_st)
                np.multiply(sig[:, :, :h], g_gate, out=tmp)
                np.add(c_st, tmp, out=c_st)
                # h = o * tanh(c)
                np.tanh(c_st, out=tmp)
                np.multiply(sig[:, :, 3 * h:], tmp, out=h_st)
                if return_sequences:
                    o_fwd[s][...] = h_st[0]
                    o_bwd[s][...] = h_st[1]
            if not return_sequences:
                out[:, :h] = h_st[0]
                out[:, h:] = h_st[1]
        return run
