"""Pluggable inference backends and the thread-local backend selector.

A backend decides *how* eval-mode batched inference executes:

``numpy-fast``
    The interpreted workspace-reuse fast path (the previous default) —
    layer-by-layer dispatch with scratch-buffer reuse.
``numpy-compiled``
    Graph-compiled execution plans (:mod:`repro.nn.compile.extract`):
    fused epilogues, preplanned arena offsets, stacked LSTM GEMMs.
    Bitwise identical to ``numpy-fast`` for float32 models; falls back
    to it per model when a layer has no compiled lowering.
``numpy-compiled-int8``
    Compiled plans with int8-at-rest GEMM weights — lossy by contract,
    gated on verdict-class agreement (the dCNN privacy ladder already
    trades fidelity for bandwidth, so this extends the same contract).

The *active* backend is thread-local with a process-wide default, the
same discipline as :func:`repro.nn.runtime.mode.reference_mode`: serving
threads route different models through different backends concurrently
without fighting over a global.  New backends (a future
``blas-threaded``) register through :func:`register_backend`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from repro.exceptions import ConfigurationError
from repro.nn.compile.extract import compile_network
from repro.nn.compile.plan import CompiledNetwork, UnsupportedLayerError


class InferenceBackend:
    """One way of executing eval-mode inference."""

    #: Registry key and the ``--backend`` CLI value.
    name = "backend"
    #: Whether models should ask this backend for execution plans.
    compiles = False
    #: Whether compiled plans quantize GEMM weights to int8.
    quantize = False

    def compile_model(self, network, input_shape
                      ) -> CompiledNetwork | None:
        """A compiled plan for ``network``, or None to use the fast path."""
        return None


class NumpyFastBackend(InferenceBackend):
    """The interpreted workspace-reuse fast path."""

    name = "numpy-fast"


class NumpyCompiledBackend(InferenceBackend):
    """Graph-compiled float32 execution plans."""

    name = "numpy-compiled"
    compiles = True

    def compile_model(self, network, input_shape
                      ) -> CompiledNetwork | None:
        try:
            return compile_network(network, input_shape,
                                   quantize=self.quantize)
        except UnsupportedLayerError:
            # Uncompilable models degrade to the interpreted fast path;
            # the caller caches the miss so this runs once per shape.
            return None


class NumpyCompiledInt8Backend(NumpyCompiledBackend):
    """Compiled plans with int8-at-rest weights (lossy by contract)."""

    name = "numpy-compiled-int8"
    quantize = True


_REGISTRY: dict[str, InferenceBackend] = {}


def register_backend(backend: InferenceBackend) -> InferenceBackend:
    """Add a backend instance to the registry (name collisions rebind)."""
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> InferenceBackend:
    """Look up a backend by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown inference backend {name!r}; "
            f"registered: {sorted(_REGISTRY)}") from None


def backend_names() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


register_backend(NumpyFastBackend())
register_backend(NumpyCompiledBackend())
register_backend(NumpyCompiledInt8Backend())

_DEFAULT = "numpy-fast"
_LOCAL = threading.local()


def active_backend_name() -> str:
    """This thread's selected backend name (default as fallback)."""
    return getattr(_LOCAL, "name", _DEFAULT)


def active_backend() -> InferenceBackend:
    """This thread's selected backend instance."""
    return get_backend(active_backend_name())


def set_default_backend(name: str) -> None:
    """Set the process-wide default backend (threads without overrides)."""
    global _DEFAULT
    get_backend(name)   # validate eagerly
    _DEFAULT = name


@contextmanager
def using_backend(name: str):
    """Select an inference backend for this thread within the block."""
    get_backend(name)   # validate eagerly
    had_override = hasattr(_LOCAL, "name")
    saved = getattr(_LOCAL, "name", None)
    _LOCAL.name = name
    try:
        yield
    finally:
        if had_override:
            _LOCAL.name = saved
        else:
            del _LOCAL.name


def warm_plans(model, name: str, *, images=None, imu=None) -> None:
    """Pin a model's compiled plans for ``name`` by running a probe pass.

    Plans are keyed by (backend, input shape) and never survive
    pickling, so a freshly spawned executor worker starts cold — its
    first real batch would pay graph extraction and arena planning
    inside a request's latency.  Calling this with representative
    1-row inputs at spawn moves that cost out of the serving path;
    after it returns, every plan the probe shapes exercise is resident.

    ``images`` / ``imu`` are single-sample batches (leading axis 1) in
    the dtypes the serving path will send; either may be omitted when
    that modality will never reach this worker.
    """
    kwargs = {}
    if images is not None:
        kwargs["images"] = images
    if imu is not None:
        kwargs["imu"] = imu
    if not kwargs:
        raise ConfigurationError("warm_plans needs images and/or imu probes")
    with using_backend(name):
        model.predict_degraded(**kwargs)
