"""Classification metrics: accuracy, top-k, confusion matrices, reports."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exact label matches (the paper's "Top-1 percentage")."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ShapeError(f"label shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ShapeError("cannot compute accuracy of zero samples")
    return float(np.mean(y_true == y_pred))


def top_k_accuracy(y_true: np.ndarray, probabilities: np.ndarray,
                   k: int = 1) -> float:
    """Hit@k: true label appears among the k most probable classes."""
    y_true = np.asarray(y_true)
    probs = np.asarray(probabilities)
    if probs.ndim != 2 or probs.shape[0] != y_true.shape[0]:
        raise ShapeError(
            f"expected ({y_true.shape[0]}, classes) probabilities, got {probs.shape}"
        )
    if not 1 <= k <= probs.shape[1]:
        raise ShapeError(f"k={k} out of range for {probs.shape[1]} classes")
    top = np.argsort(-probs, axis=1)[:, :k]
    return float(np.mean(np.any(top == y_true[:, None], axis=1)))


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray,
                     num_classes: int | None = None) -> np.ndarray:
    """Row-indexed-by-truth confusion counts ``C[i, j]``: true i predicted j."""
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    if y_true.shape != y_pred.shape:
        raise ShapeError(f"label shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if num_classes is None:
        num_classes = int(max(y_true.max(initial=0), y_pred.max(initial=0))) + 1
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (y_true, y_pred), 1)
    return matrix


def normalized_confusion(matrix: np.ndarray) -> np.ndarray:
    """Row-normalize a confusion matrix to per-true-class rates.

    Rows with no samples become all-zero rather than NaN.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    totals = matrix.sum(axis=1, keepdims=True)
    safe = np.where(totals > 0, totals, 1.0)
    return np.where(totals > 0, matrix / safe, 0.0)


def per_class_accuracy(y_true: np.ndarray, y_pred: np.ndarray,
                       num_classes: int | None = None) -> np.ndarray:
    """Diagonal of the row-normalized confusion matrix (recall per class)."""
    return np.diag(normalized_confusion(confusion_matrix(y_true, y_pred,
                                                         num_classes)))


def precision_recall_f1(y_true: np.ndarray, y_pred: np.ndarray,
                        num_classes: int | None = None
                        ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-class (precision, recall, f1).  Undefined entries are 0."""
    matrix = confusion_matrix(y_true, y_pred, num_classes).astype(np.float64)
    tp = np.diag(matrix)
    predicted = matrix.sum(axis=0)
    actual = matrix.sum(axis=1)
    precision = np.where(predicted > 0, tp / np.maximum(predicted, 1e-12), 0.0)
    recall = np.where(actual > 0, tp / np.maximum(actual, 1e-12), 0.0)
    denom = precision + recall
    f1 = np.where(denom > 0, 2 * precision * recall / np.maximum(denom, 1e-12), 0.0)
    return precision, recall, f1


def format_confusion(matrix: np.ndarray, labels: list[str] | None = None,
                     normalize: bool = True) -> str:
    """Render a confusion matrix as an aligned text table (for benches)."""
    data = normalized_confusion(matrix) if normalize else np.asarray(matrix)
    n = data.shape[0]
    labels = labels or [str(i) for i in range(n)]
    width = max(len(label) for label in labels) + 2
    cell = 7
    header = " " * width + "".join(f"{label[:cell - 1]:>{cell}}" for label in labels)
    lines = [header]
    for i, label in enumerate(labels):
        if normalize:
            row = "".join(f"{data[i, j]:>{cell}.2f}" for j in range(n))
        else:
            row = "".join(f"{int(data[i, j]):>{cell}d}" for j in range(n))
        lines.append(f"{label:<{width}}{row}")
    return "\n".join(lines)
