"""Numerical gradient checking for layers and losses.

Used throughout the test suite to verify every hand-derived backward pass
against central finite differences.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.layers.base import Layer
from repro.nn.losses import Loss


def numerical_gradient(func: Callable[[np.ndarray], float], x: np.ndarray,
                       eps: float = 1e-4) -> np.ndarray:
    """Central finite-difference gradient of scalar ``func`` at ``x``."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = func(x.astype(np.float32))
        flat[i] = original - eps
        minus = func(x.astype(np.float32))
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def relative_error(a: np.ndarray, b: np.ndarray) -> float:
    """Norm-based relative error ``||a - b|| / max(||a||, ||b||)``.

    Norm-based (rather than elementwise) comparison is the right metric
    for float32 forward passes: individual near-zero gradient entries sit
    below the finite-difference noise floor, but the aggregate direction
    and magnitude must match tightly.
    """
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    denom = max(np.linalg.norm(a), np.linalg.norm(b), 1e-8)
    return float(np.linalg.norm(a - b) / denom)


def check_layer_input_gradient(layer: Layer, x: np.ndarray, *,
                               eps: float = 1e-3,
                               rng: np.random.Generator | None = None
                               ) -> float:
    """Compare the layer's input gradient against finite differences.

    A random projection vector turns the (tensor-valued) layer output into a
    scalar so the check covers all output elements at once.  Returns the max
    relative error.
    """
    rng = rng or np.random.default_rng(0)
    out = layer.forward(np.asarray(x, dtype=np.float32))
    projection = rng.normal(size=out.shape).astype(np.float32)

    def scalar(x_probe: np.ndarray) -> float:
        return float(np.sum(layer.forward(x_probe) * projection))

    analytic = layer.backward(projection)
    numeric = numerical_gradient(scalar, np.asarray(x, dtype=np.float64), eps)
    return relative_error(analytic, numeric)


def check_layer_param_gradients(layer: Layer, x: np.ndarray, *,
                                eps: float = 1e-3,
                                rng: np.random.Generator | None = None
                                ) -> dict[str, float]:
    """Check every parameter gradient of ``layer``; returns name -> error."""
    rng = rng or np.random.default_rng(0)
    x = np.asarray(x, dtype=np.float32)
    out = layer.forward(x)
    projection = rng.normal(size=out.shape).astype(np.float32)
    for param in layer.parameters():
        param.zero_grad()
    layer.forward(x)
    layer.backward(projection)
    errors: dict[str, float] = {}
    for param in layer.parameters():
        analytic = param.grad.copy()

        def scalar(values: np.ndarray, target=param) -> float:
            saved = target.value
            target.value = values.astype(np.float32)
            result = float(np.sum(layer.forward(x) * projection))
            target.value = saved
            return result

        numeric = numerical_gradient(scalar, param.value.astype(np.float64), eps)
        errors[param.name] = relative_error(analytic, numeric)
    return errors


def check_loss_gradient(loss: Loss, predictions: np.ndarray,
                        targets: np.ndarray, eps: float = 1e-4) -> float:
    """Verify a loss's prediction gradient against finite differences."""
    loss.forward(np.asarray(predictions, dtype=np.float32), targets)
    analytic = loss.backward()

    def scalar(probe: np.ndarray) -> float:
        return loss.forward(probe, targets)

    numeric = numerical_gradient(scalar, np.asarray(predictions, np.float64), eps)
    return relative_error(analytic, numeric)
