"""First-order optimizers operating on :class:`~repro.nn.layers.base.Parameter` lists."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn.layers.base import Parameter


class Optimizer:
    """Base optimizer: tracks a parameter list and a learning rate."""

    def __init__(self, parameters, learning_rate: float) -> None:
        self.parameters: list[Parameter] = list(parameters)
        if not self.parameters:
            raise ConfigurationError("optimizer received no parameters")
        if learning_rate <= 0:
            raise ConfigurationError(f"learning rate must be > 0, got {learning_rate}")
        self.learning_rate = float(learning_rate)

    def zero_grad(self) -> None:
        """Clear accumulated gradients on every tracked parameter."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update using the currently accumulated gradients."""
        raise NotImplementedError

    def clip_gradients(self, max_norm: float) -> float:
        """Scale all gradients so their global L2 norm is <= ``max_norm``.

        Returns the pre-clip norm.  Essential for LSTM training stability.
        """
        total = 0.0
        for param in self.parameters:
            total += float(np.sum(param.grad.astype(np.float64) ** 2))
        norm = float(np.sqrt(total))
        if norm > max_norm > 0:
            scale = max_norm / (norm + 1e-12)
            for param in self.parameters:
                param.grad *= scale
        return norm


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay.

    The paper trains the dCNN "using stochastic gradient descent as the
    optimization technique" (§4.3).
    """

    def __init__(self, parameters, learning_rate: float = 0.01, *,
                 momentum: float = 0.0, nesterov: bool = False,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters, learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        if nesterov and momentum == 0.0:
            raise ConfigurationError("nesterov momentum requires momentum > 0")
        self.momentum = float(momentum)
        self.nesterov = bool(nesterov)
        self.weight_decay = float(weight_decay)
        self._velocity = [np.zeros_like(p.value) for p in self.parameters]

    def step(self) -> None:
        for param, vel in zip(self.parameters, self._velocity):
            if not param.trainable:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.value
            if self.momentum:
                vel *= self.momentum
                vel -= self.learning_rate * grad
                if self.nesterov:
                    param.value += self.momentum * vel - self.learning_rate * grad
                else:
                    param.value += vel
            else:
                param.value -= self.learning_rate * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction and weight decay."""

    def __init__(self, parameters, learning_rate: float = 0.001, *,
                 beta1: float = 0.9, beta2: float = 0.999, eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters, learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ConfigurationError("betas must be in [0, 1)")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bc1 = 1.0 - self.beta1 ** self._t
        bc2 = 1.0 - self.beta2 ** self._t
        for param, m, v in zip(self.parameters, self._m, self._v):
            if not param.trainable:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.value
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bc1
            v_hat = v / bc2
            param.value -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)


class LearningRateSchedule:
    """Step-decay schedule: multiply the LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, *, step_size: int,
                 gamma: float = 0.5, min_lr: float = 1e-6) -> None:
        if step_size <= 0:
            raise ConfigurationError("step_size must be positive")
        self.optimizer = optimizer
        self.step_size = int(step_size)
        self.gamma = float(gamma)
        self.min_lr = float(min_lr)
        self._epoch = 0

    def on_epoch_end(self) -> float:
        """Advance one epoch; returns the (possibly decayed) learning rate."""
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            new_lr = max(self.optimizer.learning_rate * self.gamma, self.min_lr)
            self.optimizer.learning_rate = new_lr
        return self.optimizer.learning_rate
