"""Pure-numpy neural-network substrate.

This subpackage is a self-contained deep-learning framework — layers with
hand-derived backward passes, losses, optimizers, a training-loop wrapper,
metrics, checkpointing, and numerical gradient checking — sufficient to
train the Inception-style CNN and bidirectional-LSTM RNN that DarNet's
analytics engine is built from.
"""

from repro.nn.layers.base import Layer, Parameter, assert_float32
from repro.nn.layers.dense import Dense
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.pooling import AvgPool2D, GlobalAvgPool2D, MaxPool2D
from repro.nn.layers.activations import (
    LeakyReLU,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
    log_softmax,
    softmax,
)
from repro.nn.layers.batchnorm import BatchNorm
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.flatten import Flatten, Reshape
from repro.nn.layers.sequential import Sequential
from repro.nn.layers.merge import ParallelBranches, Residual
from repro.nn.recurrent.lstm import LSTM
from repro.nn.recurrent.bidirectional import BidirectionalLSTM
from repro.nn.recurrent.gru import GRU
from repro.nn.recurrent.bigru import BidirectionalGRU
from repro.nn.losses import HingeLoss, Loss, MSELoss, SoftmaxCrossEntropy
from repro.nn.optimizers import SGD, Adam, LearningRateSchedule, Optimizer
from repro.nn.model import NeuralNetwork, TrainingHistory, iterate_minibatches
from repro.nn.metrics import (
    accuracy,
    confusion_matrix,
    format_confusion,
    normalized_confusion,
    per_class_accuracy,
    precision_recall_f1,
    top_k_accuracy,
)
from repro.nn.runtime import Workspace, fast_path_enabled, reference_mode
from repro.nn.compile import (
    backend_names,
    compile_network,
    set_default_backend,
    using_backend,
)
from repro.nn.serialization import copy_weights, load_weights, save_weights

__all__ = [
    "Layer", "Parameter", "assert_float32", "Dense", "Conv2D", "MaxPool2D",
    "AvgPool2D",
    "Workspace", "fast_path_enabled", "reference_mode",
    "backend_names", "compile_network", "set_default_backend",
    "using_backend",
    "GlobalAvgPool2D", "ReLU", "LeakyReLU", "Sigmoid", "Tanh", "Softmax",
    "softmax", "log_softmax", "BatchNorm", "Dropout", "Flatten", "Reshape",
    "Sequential", "ParallelBranches", "Residual", "LSTM", "BidirectionalLSTM",
    "GRU", "BidirectionalGRU",
    "Loss", "SoftmaxCrossEntropy", "MSELoss", "HingeLoss", "SGD", "Adam",
    "LearningRateSchedule", "Optimizer", "NeuralNetwork", "TrainingHistory",
    "iterate_minibatches", "accuracy", "top_k_accuracy", "confusion_matrix",
    "normalized_confusion", "per_class_accuracy", "precision_recall_f1",
    "format_confusion", "save_weights", "load_weights", "copy_weights",
]
