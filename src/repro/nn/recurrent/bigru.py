"""Bidirectional GRU wrapper — the recurrent-cell ablation counterpart."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.nn.layers.base import Layer, as_float32
from repro.nn.recurrent.gru import GRU


class BidirectionalGRU(Layer):
    """Forward and backward GRUs over the same input, outputs concatenated.

    Drop-in alternative to
    :class:`~repro.nn.recurrent.bidirectional.BidirectionalLSTM`; output
    feature size is ``2 * hidden_size``.
    """

    def __init__(self, input_size: int, hidden_size: int, *,
                 return_sequences: bool = False,
                 rng: np.random.Generator | None = None,
                 name: str | None = None) -> None:
        super().__init__(name)
        rng = rng or np.random.default_rng()
        self.hidden_size = int(hidden_size)
        self.return_sequences = bool(return_sequences)
        self.forward_gru = GRU(input_size, hidden_size,
                               return_sequences=return_sequences,
                               reverse=False, rng=rng,
                               name=f"{self.name}.fwd")
        self.backward_gru = GRU(input_size, hidden_size,
                                return_sequences=return_sequences,
                                reverse=True, rng=rng,
                                name=f"{self.name}.bwd")

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_float32(x)
        fwd = self.forward_gru.forward(x)
        bwd = self.backward_gru.forward(x)
        return np.concatenate([fwd, bwd], axis=-1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad = as_float32(grad)
        h = self.hidden_size
        d_fwd = self.forward_gru.backward(grad[..., :h])
        d_bwd = self.backward_gru.backward(grad[..., h:])
        return d_fwd + d_bwd

    def children(self) -> Iterator[Layer]:
        yield self.forward_gru
        yield self.backward_gru
