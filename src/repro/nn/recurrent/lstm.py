"""Long short-term memory layer with full backpropagation through time.

Weights follow the fused-gate convention: a single input kernel of shape
``(input_size, 4 * hidden)`` and recurrent kernel ``(hidden, 4 * hidden)``,
gate order ``[input, forget, cell, output]``.  The forget-gate bias is
initialized to 1.0 (Jozefowicz et al., 2015), which materially speeds up
convergence on short IMU windows.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.initializers import get_initializer
from repro.nn.layers.base import Layer, Parameter, as_float32


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


class LSTM(Layer):
    """Unidirectional LSTM over ``(batch, time, features)`` input.

    Args:
        input_size: per-timestep feature dimension.
        hidden_size: number of hidden units.
        return_sequences: if True output is ``(batch, time, hidden)``;
            otherwise the final hidden state ``(batch, hidden)``.
        reverse: process the sequence back-to-front (used by the
            bidirectional wrapper).  With ``return_sequences`` the output is
            re-reversed so index t always corresponds to input step t.
        weight_init: initializer for the input kernel.
        recurrent_init: initializer for the recurrent kernel.
        rng: generator for initialization.
    """

    def __init__(self, input_size: int, hidden_size: int, *,
                 return_sequences: bool = False, reverse: bool = False,
                 weight_init: str = "glorot_uniform",
                 recurrent_init: str = "orthogonal",
                 rng: np.random.Generator | None = None,
                 name: str | None = None) -> None:
        super().__init__(name)
        rng = rng or np.random.default_rng()
        self.input_size = int(input_size)
        self.hidden_size = int(hidden_size)
        self.return_sequences = bool(return_sequences)
        self.reverse = bool(reverse)
        w_init = get_initializer(weight_init)
        r_init = get_initializer(recurrent_init)
        h = self.hidden_size
        self.w_x = Parameter(w_init((input_size, 4 * h), rng),
                             name=f"{self.name}.w_x")
        # Orthogonal per-gate blocks keep recurrent dynamics well-conditioned.
        rec = np.concatenate([r_init((h, h), rng) for _ in range(4)], axis=1)
        self.w_h = Parameter(rec, name=f"{self.name}.w_h")
        bias = np.zeros(4 * h, dtype=np.float32)
        bias[h:2 * h] = 1.0  # forget-gate bias
        self.bias = Parameter(bias, name=f"{self.name}.bias")
        self._cache: dict | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_float32(x)
        if x.ndim != 3 or x.shape[2] != self.input_size:
            raise ShapeError(
                f"{self.name}: expected (batch, time, {self.input_size}), "
                f"got {x.shape}"
            )
        return self._forward(x)

    def _forward(self, x: np.ndarray) -> np.ndarray:
        """Forward on an already-validated, contiguous float32 batch.

        The bidirectional wrapper validates and converts once and calls
        this for both directions, skipping a redundant ``as_float32``
        pass per direction.
        """
        if self.reverse:
            x = x[:, ::-1, :]
        if self._fast_inference():
            return self._forward_inference(x)
        n, t, _ = x.shape
        h = self.hidden_size
        # Precompute all input projections in one GEMM.
        x_proj = x.reshape(n * t, -1) @ self.w_x.value + self.bias.value
        x_proj = x_proj.reshape(n, t, 4 * h)
        h_prev = np.zeros((n, h), dtype=np.float32)
        c_prev = np.zeros((n, h), dtype=np.float32)
        gates_i = np.empty((t, n, h), dtype=np.float32)
        gates_f = np.empty((t, n, h), dtype=np.float32)
        gates_g = np.empty((t, n, h), dtype=np.float32)
        gates_o = np.empty((t, n, h), dtype=np.float32)
        cells = np.empty((t, n, h), dtype=np.float32)
        tanh_c = np.empty((t, n, h), dtype=np.float32)
        hiddens = np.empty((t, n, h), dtype=np.float32)
        h_in = np.empty((t, n, h), dtype=np.float32)
        c_in = np.empty((t, n, h), dtype=np.float32)
        for step in range(t):
            h_in[step] = h_prev
            c_in[step] = c_prev
            z = x_proj[:, step, :] + h_prev @ self.w_h.value
            i_g = _sigmoid(z[:, 0 * h:1 * h])
            f_g = _sigmoid(z[:, 1 * h:2 * h])
            g_g = np.tanh(z[:, 2 * h:3 * h])
            o_g = _sigmoid(z[:, 3 * h:4 * h])
            c_prev = f_g * c_prev + i_g * g_g
            tc = np.tanh(c_prev)
            h_prev = o_g * tc
            gates_i[step], gates_f[step] = i_g, f_g
            gates_g[step], gates_o[step] = g_g, o_g
            cells[step], tanh_c[step], hiddens[step] = c_prev, tc, h_prev
        self._cache = {
            "x": x, "h_in": h_in, "c_in": c_in,
            "i": gates_i, "f": gates_f, "g": gates_g, "o": gates_o,
            "tanh_c": tanh_c, "hiddens": hiddens,
        }
        if self.return_sequences:
            out = hiddens.transpose(1, 0, 2)
            if self.reverse:
                out = out[:, ::-1, :]
            return np.ascontiguousarray(out)
        return hiddens[-1].copy()

    def _forward_inference(self, x: np.ndarray) -> np.ndarray:
        """Cache-free recurrence: same gate math, no BPTT bookkeeping.

        The training loop stores nine ``(t, n, h)`` tensors for backward;
        here only the escaping output is kept.  The gate math itself is
        deliberately allocating, not in-place: per-step arrays are tiny
        (n x h), so allocation is cheap, while in-place ufuncs on strided
        gate *slices* fall off numpy's contiguous fast loops and measure
        ~2x slower at small hidden sizes.  The ``[i, f, g, o]`` gate
        layout lets one sigmoid call cover the adjacent input and forget
        gates.  ``x`` arrives already time-reversed when ``self.reverse``.
        """
        n, t, _ = x.shape
        h = self.hidden_size
        self._cache = None
        proj = self.scratch("proj", (n * t, 4 * h))
        np.matmul(x.reshape(n * t, -1), self.w_x.value, out=proj)
        proj += self.bias.value
        proj3 = proj.reshape(n, t, 4 * h)
        h_prev = np.zeros((n, h), dtype=np.float32)
        c_prev = np.zeros((n, h), dtype=np.float32)
        hiddens = (np.empty((t, n, h), dtype=np.float32)
                   if self.return_sequences else None)
        for step in range(t):
            z = proj3[:, step, :] + h_prev @ self.w_h.value
            if_g = _sigmoid(z[:, 0 * h:2 * h])
            g_g = np.tanh(z[:, 2 * h:3 * h])
            o_g = _sigmoid(z[:, 3 * h:4 * h])
            c_prev = if_g[:, h:] * c_prev + if_g[:, :h] * g_g
            h_prev = o_g * np.tanh(c_prev)
            if hiddens is not None:
                hiddens[step] = h_prev
        if self.return_sequences:
            out = hiddens.transpose(1, 0, 2)
            if self.reverse:
                out = out[:, ::-1, :]
            return np.ascontiguousarray(out)
        return h_prev.copy()

    def backward(self, grad: np.ndarray) -> np.ndarray:
        cache = self._require_cache(self._cache)
        x = cache["x"]
        n, t, _ = x.shape
        h = self.hidden_size
        grad = as_float32(grad)
        if self.return_sequences:
            if self.reverse:
                grad = grad[:, ::-1, :]
            dh_seq = np.ascontiguousarray(grad.transpose(1, 0, 2))
        else:
            dh_seq = np.zeros((t, n, h), dtype=np.float32)
            dh_seq[-1] = grad
        dz_all = np.empty((t, n, 4 * h), dtype=np.float32)
        dh_next = np.zeros((n, h), dtype=np.float32)
        dc_next = np.zeros((n, h), dtype=np.float32)
        w_h_t = self.w_h.value.T
        for step in range(t - 1, -1, -1):
            dh = dh_seq[step] + dh_next
            i_g, f_g = cache["i"][step], cache["f"][step]
            g_g, o_g = cache["g"][step], cache["o"][step]
            tc = cache["tanh_c"][step]
            dc = dh * o_g * (1.0 - tc * tc) + dc_next
            d_i = dc * g_g * i_g * (1.0 - i_g)
            d_f = dc * cache["c_in"][step] * f_g * (1.0 - f_g)
            d_g = dc * i_g * (1.0 - g_g * g_g)
            d_o = dh * tc * o_g * (1.0 - o_g)
            dz = np.concatenate([d_i, d_f, d_g, d_o], axis=1)
            dz_all[step] = dz
            dh_next = dz @ w_h_t
            dc_next = dc * f_g
        # Accumulate weight gradients with batched GEMMs.
        flat_dz = dz_all.transpose(1, 0, 2).reshape(n * t, 4 * h)
        flat_x = x.reshape(n * t, self.input_size)
        self.w_x.grad += flat_x.T @ flat_dz
        flat_hin = cache["h_in"].transpose(1, 0, 2).reshape(n * t, h)
        self.w_h.grad += flat_hin.T @ flat_dz
        self.bias.grad += flat_dz.sum(axis=0)
        dx = (flat_dz @ self.w_x.value.T).reshape(n, t, self.input_size)
        if self.reverse:
            dx = dx[:, ::-1, :]
        return np.ascontiguousarray(dx)
