"""Bidirectional wrapper around :class:`~repro.nn.recurrent.lstm.LSTM`."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.layers.base import Layer, as_float32
from repro.nn.recurrent.lstm import LSTM


class BidirectionalLSTM(Layer):
    """Forward and backward LSTMs over the same input, outputs concatenated.

    This is the building block of DarNet's IMU network: "each LSTM cell
    propagating its output forward and backward through time" (paper §4.2).
    Output feature size is ``2 * hidden_size``.

    Args:
        input_size: per-timestep feature dimension.
        hidden_size: hidden units per direction.
        return_sequences: emit the full ``(batch, time, 2*hidden)`` sequence
            (True for stacking) or the concatenated final states.
        rng: generator for initialization.
    """

    def __init__(self, input_size: int, hidden_size: int, *,
                 return_sequences: bool = False,
                 rng: np.random.Generator | None = None,
                 name: str | None = None) -> None:
        super().__init__(name)
        rng = rng or np.random.default_rng()
        self.hidden_size = int(hidden_size)
        self.return_sequences = bool(return_sequences)
        self.forward_lstm = LSTM(
            input_size, hidden_size, return_sequences=return_sequences,
            reverse=False, rng=rng, name=f"{self.name}.fwd",
        )
        self.backward_lstm = LSTM(
            input_size, hidden_size, return_sequences=return_sequences,
            reverse=True, rng=rng, name=f"{self.name}.bwd",
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        # Validate and convert once; both directions then take the
        # already-checked array (LSTM.forward would re-run as_float32 and
        # the shape check per direction on the exact same batch).
        x = as_float32(x)
        expected = self.forward_lstm.input_size
        if x.ndim != 3 or x.shape[2] != expected:
            raise ShapeError(
                f"{self.name}: expected (batch, time, {expected}), "
                f"got {x.shape}"
            )
        fwd = self.forward_lstm._forward(x)
        bwd = self.backward_lstm._forward(x)
        return np.concatenate([fwd, bwd], axis=-1)

    def stacked_weights(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Both directions' kernels packed for one stacked-GEMM plan.

        Returns ``(w_x_cat, w_h_stack, bias_cat)`` — the input kernels
        column-concatenated to ``(input, 8h)`` so one GEMM covers both
        directions' input projections, the recurrent kernels stacked to
        ``(2, h, 4h)`` for a batched per-timestep gate matmul, and the
        biases concatenated to ``(8h,)``.  Used by the graph compiler
        (:mod:`repro.nn.compile`); arrays are copies (a weight snapshot).
        """
        fwd, bwd = self.forward_lstm, self.backward_lstm
        w_x_cat = np.concatenate([fwd.w_x.value, bwd.w_x.value], axis=1)
        w_h_stack = np.ascontiguousarray(
            np.stack([fwd.w_h.value, bwd.w_h.value], axis=0))
        bias_cat = np.concatenate([fwd.bias.value, bwd.bias.value])
        return (np.ascontiguousarray(w_x_cat), w_h_stack,
                np.ascontiguousarray(bias_cat))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad = as_float32(grad)
        h = self.hidden_size
        d_fwd = self.forward_lstm.backward(grad[..., :h])
        d_bwd = self.backward_lstm.backward(grad[..., h:])
        return d_fwd + d_bwd

    def children(self) -> Iterator[Layer]:
        yield self.forward_lstm
        yield self.backward_lstm
