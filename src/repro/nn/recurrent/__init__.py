"""Recurrent layers: LSTM, bidirectional wrapper."""
