"""Gated recurrent unit (Cho et al., 2014) with full BPTT.

Provided as the natural architecture ablation against the paper's LSTM
choice (§4.2 argues for LSTMs over SVMs; GRU vs. LSTM is the remaining
recurrent design question).  Interface-compatible with
:class:`~repro.nn.recurrent.lstm.LSTM` so it drops into the same stacks.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.initializers import get_initializer
from repro.nn.layers.base import Layer, Parameter, as_float32


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


class GRU(Layer):
    """Unidirectional GRU over ``(batch, time, features)`` input.

    Gate order in the fused kernels is ``[update(z), reset(r)]`` with a
    separate candidate kernel, matching the standard formulation:

        z_t = sigmoid(x_t Wz + h_{t-1} Uz + bz)
        r_t = sigmoid(x_t Wr + h_{t-1} Ur + br)
        c_t = tanh(x_t Wc + (r_t * h_{t-1}) Uc + bc)
        h_t = (1 - z_t) * h_{t-1} + z_t * c_t
    """

    def __init__(self, input_size: int, hidden_size: int, *,
                 return_sequences: bool = False, reverse: bool = False,
                 weight_init: str = "glorot_uniform",
                 recurrent_init: str = "orthogonal",
                 rng: np.random.Generator | None = None,
                 name: str | None = None) -> None:
        super().__init__(name)
        rng = rng or np.random.default_rng()
        self.input_size = int(input_size)
        self.hidden_size = int(hidden_size)
        self.return_sequences = bool(return_sequences)
        self.reverse = bool(reverse)
        w_init = get_initializer(weight_init)
        r_init = get_initializer(recurrent_init)
        h = self.hidden_size
        self.w_gates = Parameter(w_init((input_size, 2 * h), rng),
                                 name=f"{self.name}.w_gates")
        rec = np.concatenate([r_init((h, h), rng) for _ in range(2)], axis=1)
        self.u_gates = Parameter(rec, name=f"{self.name}.u_gates")
        self.b_gates = Parameter(np.zeros(2 * h, dtype=np.float32),
                                 name=f"{self.name}.b_gates")
        self.w_cand = Parameter(w_init((input_size, h), rng),
                                name=f"{self.name}.w_cand")
        self.u_cand = Parameter(r_init((h, h), rng),
                                name=f"{self.name}.u_cand")
        self.b_cand = Parameter(np.zeros(h, dtype=np.float32),
                                name=f"{self.name}.b_cand")
        self._cache: dict | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_float32(x)
        if x.ndim != 3 or x.shape[2] != self.input_size:
            raise ShapeError(
                f"{self.name}: expected (batch, time, {self.input_size}), "
                f"got {x.shape}"
            )
        if self.reverse:
            x = x[:, ::-1, :]
        if self._fast_inference():
            return self._forward_inference(x)
        n, t, _ = x.shape
        h = self.hidden_size
        x_gates = (x.reshape(n * t, -1) @ self.w_gates.value
                   + self.b_gates.value).reshape(n, t, 2 * h)
        x_cand = (x.reshape(n * t, -1) @ self.w_cand.value
                  + self.b_cand.value).reshape(n, t, h)
        h_prev = np.zeros((n, h), dtype=np.float32)
        zs = np.empty((t, n, h), dtype=np.float32)
        rs = np.empty((t, n, h), dtype=np.float32)
        cs = np.empty((t, n, h), dtype=np.float32)
        h_in = np.empty((t, n, h), dtype=np.float32)
        hiddens = np.empty((t, n, h), dtype=np.float32)
        for step in range(t):
            h_in[step] = h_prev
            gates = x_gates[:, step, :] + h_prev @ self.u_gates.value
            z = _sigmoid(gates[:, :h])
            r = _sigmoid(gates[:, h:])
            cand = np.tanh(x_cand[:, step, :]
                           + (r * h_prev) @ self.u_cand.value)
            h_prev = (1.0 - z) * h_prev + z * cand
            zs[step], rs[step], cs[step] = z, r, cand
            hiddens[step] = h_prev
        self._cache = {"x": x, "h_in": h_in, "z": zs, "r": rs, "c": cs,
                       "hiddens": hiddens}
        if self.return_sequences:
            out = hiddens.transpose(1, 0, 2)
            if self.reverse:
                out = out[:, ::-1, :]
            return np.ascontiguousarray(out)
        return hiddens[-1].copy()

    def _forward_inference(self, x: np.ndarray) -> np.ndarray:
        """Cache-free recurrence; ``x`` is already time-reversed.

        Identical step math to the training loop (so the two paths agree
        bitwise), minus the BPTT bookkeeping.  Per-step arrays stay
        allocating on purpose — they are tiny, and in-place ufuncs on
        strided gate slices are slower than fresh contiguous outputs.
        """
        n, t, _ = x.shape
        h = self.hidden_size
        self._cache = None
        flat_x = x.reshape(n * t, -1)
        x_gates = self.scratch("xg", (n * t, 2 * h))
        np.matmul(flat_x, self.w_gates.value, out=x_gates)
        x_gates += self.b_gates.value
        x_cand = self.scratch("xc", (n * t, h))
        np.matmul(flat_x, self.w_cand.value, out=x_cand)
        x_cand += self.b_cand.value
        gates3 = x_gates.reshape(n, t, 2 * h)
        cand3 = x_cand.reshape(n, t, h)
        h_prev = np.zeros((n, h), dtype=np.float32)
        hiddens = (np.empty((t, n, h), dtype=np.float32)
                   if self.return_sequences else None)
        for step in range(t):
            gates = gates3[:, step, :] + h_prev @ self.u_gates.value
            z = _sigmoid(gates[:, :h])
            r = _sigmoid(gates[:, h:])
            cand = np.tanh(cand3[:, step, :]
                           + (r * h_prev) @ self.u_cand.value)
            h_prev = (1.0 - z) * h_prev + z * cand
            if hiddens is not None:
                hiddens[step] = h_prev
        if self.return_sequences:
            out = hiddens.transpose(1, 0, 2)
            if self.reverse:
                out = out[:, ::-1, :]
            return np.ascontiguousarray(out)
        return h_prev.copy()

    def backward(self, grad: np.ndarray) -> np.ndarray:
        cache = self._require_cache(self._cache)
        x = cache["x"]
        n, t, _ = x.shape
        h = self.hidden_size
        grad = as_float32(grad)
        if self.return_sequences:
            if self.reverse:
                grad = grad[:, ::-1, :]
            dh_seq = np.ascontiguousarray(grad.transpose(1, 0, 2))
        else:
            dh_seq = np.zeros((t, n, h), dtype=np.float32)
            dh_seq[-1] = grad
        d_xgates = np.empty((t, n, 2 * h), dtype=np.float32)
        d_xcand = np.empty((t, n, h), dtype=np.float32)
        dh_next = np.zeros((n, h), dtype=np.float32)
        u_gates_t = self.u_gates.value.T
        u_cand_t = self.u_cand.value.T
        for step in range(t - 1, -1, -1):
            dh = dh_seq[step] + dh_next
            z, r, cand = cache["z"][step], cache["r"][step], cache["c"][step]
            h_prev = cache["h_in"][step]
            d_cand = dh * z * (1.0 - cand * cand)
            d_z = dh * (cand - h_prev) * z * (1.0 - z)
            d_rh = d_cand @ u_cand_t          # grad w.r.t. (r * h_prev)
            d_r = d_rh * h_prev * r * (1.0 - r)
            d_gates = np.concatenate([d_z, d_r], axis=1)
            d_xgates[step] = d_gates
            d_xcand[step] = d_cand
            dh_next = (dh * (1.0 - z) + d_rh * r + d_gates @ u_gates_t)
        flat_dg = d_xgates.transpose(1, 0, 2).reshape(n * t, 2 * h)
        flat_dc = d_xcand.transpose(1, 0, 2).reshape(n * t, h)
        flat_x = x.reshape(n * t, self.input_size)
        flat_hin = cache["h_in"].transpose(1, 0, 2).reshape(n * t, h)
        rh = (cache["r"] * cache["h_in"]).transpose(1, 0, 2).reshape(n * t, h)
        self.w_gates.grad += flat_x.T @ flat_dg
        self.u_gates.grad += flat_hin.T @ flat_dg
        self.b_gates.grad += flat_dg.sum(axis=0)
        self.w_cand.grad += flat_x.T @ flat_dc
        self.u_cand.grad += rh.T @ flat_dc
        self.b_cand.grad += flat_dc.sum(axis=0)
        dx = (flat_dg @ self.w_gates.value.T
              + flat_dc @ self.w_cand.value.T).reshape(n, t, self.input_size)
        if self.reverse:
            dx = dx[:, ::-1, :]
        return np.ascontiguousarray(dx)
