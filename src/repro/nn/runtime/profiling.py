"""Sampled per-layer forward timing.

Timing every layer of every forward pass would tax the hot path the
serving tier spent PR 4 stripping down, so profiling is a *sampling*
switch: enabled with a period ``N``, every Nth :class:`~.sequential.
Sequential` forward pass is timed layer by layer and the durations land
in the process registry as ``nn_layer_forward_seconds{layer=...}``
histograms.  Disabled (the default), the cost is one integer check per
container forward.

The switch is process-global, like :mod:`repro.nn.runtime.mode`: the
forward pass is single-threaded per process, and forked executor workers
inherit the setting while their samples drain back to the parent through
the fork-aware registry.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.exceptions import ConfigurationError
from repro.obs.metrics import Histogram, get_registry

_EVERY = 0        # 0 = disabled
_CALLS = 0        # container forwards seen since the switch was set


def set_layer_profiling(every: int) -> None:
    """Sample every ``every``-th container forward; 0 disables."""
    global _EVERY, _CALLS
    if every < 0:
        raise ConfigurationError(f"sampling period must be >= 0, got {every}")
    _EVERY = int(every)
    _CALLS = 0


def layer_profiling_interval() -> int:
    """The active sampling period (0 when profiling is off)."""
    return _EVERY


def should_sample() -> bool:
    """Whether the current container forward is a profiling sample."""
    global _CALLS
    if not _EVERY:
        return False
    _CALLS += 1
    return _CALLS % _EVERY == 0


@contextmanager
def profiled_layers(every: int = 1):
    """Enable layer profiling for a block, restoring the prior setting."""
    saved = _EVERY
    set_layer_profiling(every)
    try:
        yield
    finally:
        set_layer_profiling(saved)


def layer_timer(layer_name: str) -> Histogram:
    """The registry histogram one layer's forward samples land in."""
    return get_registry().histogram(
        "nn_layer_forward_seconds",
        "Sampled per-layer forward wall-clock time", layer=layer_name)
