"""Reusable scratch-buffer arena for the inference fast path.

Training-mode forward passes allocate fresh arrays on every call — im2col
column matrices, LSTM gate tensors, padded inputs — because each must
survive until the matching backward pass.  Inference has no backward
pass, so those arrays are pure scratch: a :class:`Workspace` keeps one
buffer per ``(tag, shape, dtype)`` and hands the same memory back on
every forward call with matching shapes.  For serving workloads, where
thousands of same-shape batches flow through one model, this removes the
allocator (and the page-faulting of fresh large mmap'd blocks) from the
steady-state loop.

Safety rules, enforced by convention in the layer implementations:

* scratch buffers never escape a single ``forward`` call — anything
  returned to the caller or cached for backward is freshly allocated;
* a layer may not hold two live buffers under the same key, so tags are
  prefixed with the layer name plus a role (``"conv3.cols"``);
* the arena is single-threaded, like the forward pass itself.  Parallel
  executors give each worker process its own workspace.
"""

from __future__ import annotations

import numpy as np

#: Keys are (tag, shape, dtype-str); values are the reusable buffers.
_Key = tuple[str, tuple[int, ...], str]


class Workspace:
    """A per-model arena of reusable scratch arrays.

    Buffers are keyed by ``(tag, shape, dtype)`` — a new shape under the
    same tag allocates a new buffer rather than resizing, so mixed batch
    sizes (full batches plus one ragged tail) coexist without churn.
    """

    def __init__(self) -> None:
        self._buffers: dict[_Key, np.ndarray] = {}
        # Plain ints on the hot path; published to the process registry
        # in bulk by publish_metrics() so buffer() stays lock-free.
        self.hits = 0
        self.misses = 0
        self._published = (0, 0)

    def buffer(self, tag: str, shape: tuple[int, ...],
               dtype: np.dtype | type = np.float32) -> np.ndarray:
        """An uninitialized scratch array of the requested shape.

        Contents are whatever the previous use left behind — callers must
        overwrite every element they read.
        """
        dtype = np.dtype(dtype)
        key = (tag, tuple(int(s) for s in shape), dtype.str)
        buf = self._buffers.get(key)
        if buf is None:
            self.misses += 1
            buf = np.empty(key[1], dtype=dtype)
            self._buffers[key] = buf
        else:
            self.hits += 1
        return buf

    def zeros(self, tag: str, shape: tuple[int, ...],
              dtype: np.dtype | type = np.float32) -> np.ndarray:
        """A scratch array cleared to zero on every call."""
        buf = self.buffer(tag, shape, dtype)
        buf.fill(0)
        return buf

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the arena."""
        return sum(buf.nbytes for buf in self._buffers.values())

    def __len__(self) -> int:
        return len(self._buffers)

    def clear(self) -> None:
        """Drop every buffer (frees the memory to the allocator)."""
        self._buffers.clear()

    def publish_metrics(self) -> None:
        """Flush hit/miss deltas to the process metrics registry.

        Deferred import and bulk increments keep :meth:`buffer` free of
        registry locking; callers (the model's predict path, the serving
        snapshot) publish at batch granularity instead.
        """
        from repro.obs.metrics import get_registry

        hits, misses = self.hits, self.misses
        done_hits, done_misses = self._published
        registry = get_registry()
        if hits > done_hits:
            registry.counter("nn_workspace_hits_total",
                             "Workspace buffer reuses").inc(hits - done_hits)
        if misses > done_misses:
            registry.counter("nn_workspace_misses_total",
                             "Workspace buffer allocations").inc(
                                 misses - done_misses)
        self._published = (hits, misses)

    # Workspaces ride along on models that get pickled into worker
    # processes; the buffers are pure scratch, so ship none of them.
    def __getstate__(self) -> dict:
        return {}

    def __setstate__(self, state: dict) -> None:
        del state
        self._buffers = {}
        self.hits = 0
        self.misses = 0
        self._published = (0, 0)

    def __repr__(self) -> str:
        return (f"Workspace(buffers={len(self._buffers)}, "
                f"nbytes={self.nbytes})")
