"""Switch for the inference fast path — thread-local, global fallback.

Layers take the fast path when they are in eval mode (``set_training
(False)``) *and* the fast path is enabled.  The switch exists for exactly
two callers: the parity tests and the benchmark harness, both of which
need to run the reference (training-style) forward on an eval-mode model
for comparison.  Everything else should leave it alone — the fast path
is numerically interchangeable with the reference path (same GEMMs, same
reductions, ordering differences only at float32 rounding level).

The switch is **thread-local with the process global as fallback**: a
benchmark thread inside :func:`reference_mode` must not silently drop
concurrent serving threads onto the reference path.  A thread that has
never touched the switch reads the process-wide default (which forked
executor workers inherit); :func:`reference_mode` only ever overrides the
calling thread.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

_FAST_PATH = True          # process-wide default (fallback)
_LOCAL = threading.local()  # per-thread override, set only by reference_mode


def fast_path_enabled() -> bool:
    """Whether eval-mode layers may use workspace/in-place execution.

    Reads the calling thread's override when one is active, else the
    process-wide default.
    """
    return getattr(_LOCAL, "value", _FAST_PATH)


def set_default_fast_path(enabled: bool) -> None:
    """Set the process-wide default (threads without an override see it)."""
    global _FAST_PATH
    _FAST_PATH = bool(enabled)


@contextmanager
def reference_mode():
    """Temporarily force the reference forward path **on this thread**.

    Nesting restores the outer state; other threads are unaffected.
    """
    had_override = hasattr(_LOCAL, "value")
    saved = getattr(_LOCAL, "value", None)
    _LOCAL.value = False
    try:
        yield
    finally:
        if had_override:
            _LOCAL.value = saved
        else:
            del _LOCAL.value
