"""Global switch for the inference fast path.

Layers take the fast path when they are in eval mode (``set_training
(False)``) *and* the fast path is globally enabled.  The global switch
exists for exactly two callers: the parity tests and the benchmark
harness, both of which need to run the reference (training-style)
forward on an eval-mode model for comparison.  Everything else should
leave it alone — the fast path is numerically interchangeable with the
reference path (same GEMMs, same reductions, ordering differences only
at float32 rounding level).
"""

from __future__ import annotations

from contextlib import contextmanager

_FAST_PATH = True


def fast_path_enabled() -> bool:
    """Whether eval-mode layers may use workspace/in-place execution."""
    return _FAST_PATH


@contextmanager
def reference_mode():
    """Temporarily force the reference forward path (for parity/bench)."""
    global _FAST_PATH
    saved = _FAST_PATH
    _FAST_PATH = False
    try:
        yield
    finally:
        _FAST_PATH = saved
