"""Inference-time execution runtime: scratch arenas and path selection."""

from repro.nn.runtime.mode import fast_path_enabled, reference_mode
from repro.nn.runtime.profiling import (
    layer_profiling_interval,
    profiled_layers,
    set_layer_profiling,
)
from repro.nn.runtime.workspace import Workspace

__all__ = [
    "Workspace", "fast_path_enabled", "reference_mode",
    "layer_profiling_interval", "profiled_layers", "set_layer_profiling",
]
