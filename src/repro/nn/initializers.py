"""Weight initialization schemes for the numpy neural-network substrate.

All initializers are plain functions of ``(shape, rng)`` returning a float32
array.  Layers accept an initializer by name (string) or callable; see
:func:`get_initializer`.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.exceptions import ConfigurationError

Initializer = Callable[[Sequence[int], np.random.Generator], np.ndarray]


def _fan_in_out(shape: Sequence[int]) -> tuple[int, int]:
    """Compute (fan_in, fan_out) for dense and convolutional kernels.

    Dense kernels are ``(in, out)``.  Convolution kernels are
    ``(out_channels, in_channels, kh, kw)``.
    """
    if len(shape) == 2:
        return int(shape[0]), int(shape[1])
    if len(shape) == 4:
        receptive = int(shape[2]) * int(shape[3])
        return int(shape[1]) * receptive, int(shape[0]) * receptive
    size = int(np.prod(shape))
    return size, size


def zeros(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """All-zero initialization (biases, batch-norm shifts)."""
    del rng
    return np.zeros(shape, dtype=np.float32)


def ones(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """All-one initialization (batch-norm scales)."""
    del rng
    return np.ones(shape, dtype=np.float32)


def he_normal(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """He et al. (2015) normal init; standard choice before ReLU."""
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def glorot_uniform(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """Glorot & Bengio (2010) uniform init; used for tanh/sigmoid gates."""
    fan_in, fan_out = _fan_in_out(shape)
    limit = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def orthogonal(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """Orthogonal init (Saxe et al., 2013); used for recurrent kernels."""
    if len(shape) < 2:
        raise ConfigurationError("orthogonal init requires a >=2-D shape")
    rows = int(shape[0])
    cols = int(np.prod(shape[1:]))
    flat = rng.normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q = q * np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return q[:rows, :cols].reshape(shape).astype(np.float32)


def small_normal(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """Small Gaussian init (std 0.01); used for final classifier layers."""
    return rng.normal(0.0, 0.01, size=shape).astype(np.float32)


_REGISTRY: dict[str, Initializer] = {
    "zeros": zeros,
    "ones": ones,
    "he_normal": he_normal,
    "glorot_uniform": glorot_uniform,
    "orthogonal": orthogonal,
    "small_normal": small_normal,
}


def get_initializer(spec: str | Initializer) -> Initializer:
    """Resolve an initializer given by name or callable.

    Raises :class:`ConfigurationError` for unknown names.
    """
    if callable(spec):
        return spec
    try:
        return _REGISTRY[spec]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown initializer {spec!r}; known initializers: {known}"
        ) from None
