"""Fully connected (dense) layer."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.initializers import get_initializer
from repro.nn.layers.base import Layer, Parameter, as_float32


class Dense(Layer):
    """Affine transform ``y = x @ W + b`` on 2-D inputs ``(batch, in)``.

    Args:
        in_features: input feature dimension.
        out_features: output feature dimension.
        use_bias: include the additive bias term.
        weight_init: initializer name or callable for ``W``.
        rng: generator used to draw initial weights.
    """

    def __init__(self, in_features: int, out_features: int, *,
                 use_bias: bool = True, weight_init: str = "he_normal",
                 rng: np.random.Generator | None = None,
                 name: str | None = None) -> None:
        super().__init__(name)
        rng = rng or np.random.default_rng()
        init = get_initializer(weight_init)
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.weight = Parameter(init((in_features, out_features), rng),
                                name=f"{self.name}.weight")
        self.bias = None
        if use_bias:
            self.bias = Parameter(np.zeros(out_features, dtype=np.float32),
                                  name=f"{self.name}.bias")
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_float32(x)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ShapeError(
                f"{self.name}: expected (batch, {self.in_features}), got {x.shape}"
            )
        if self._fast_inference():
            self._x = None
            out = x @ self.weight.value
            if self.bias is not None:
                out += self.bias.value  # in place: the GEMM output is fresh
            return out
        self._x = x
        out = x @ self.weight.value
        if self.bias is not None:
            out = out + self.bias.value
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        x = self._require_cache(self._x)
        grad = as_float32(grad)
        self.weight.grad += x.T @ grad
        if self.bias is not None:
            self.bias.grad += grad.sum(axis=0)
        return grad @ self.weight.value.T
