"""Batch normalization for dense (NC) and convolutional (NCHW) inputs."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.layers.base import Layer, Parameter, as_float32


class BatchNorm(Layer):
    """Batch normalization (Ioffe & Szegedy, 2015).

    Normalizes over the batch (and spatial axes for NCHW input), then applies
    a learned per-channel scale/shift.  Running statistics accumulated during
    training are used in eval mode.

    Args:
        num_features: channel count (axis 1 of the input).
        momentum: EMA coefficient for the running statistics.
        eps: numerical stabilizer inside the square root.
    """

    def __init__(self, num_features: int, *, momentum: float = 0.9,
                 eps: float = 1e-5, name: str | None = None) -> None:
        super().__init__(name)
        self.num_features = int(num_features)
        self.momentum = float(momentum)
        self.eps = float(eps)
        self.gamma = Parameter(np.ones(num_features, dtype=np.float32),
                               name=f"{self.name}.gamma")
        self.beta = Parameter(np.zeros(num_features, dtype=np.float32),
                              name=f"{self.name}.beta")
        self.running_mean = np.zeros(num_features, dtype=np.float32)
        self.running_var = np.ones(num_features, dtype=np.float32)
        self._cache: tuple | None = None

    def _reduce_axes(self, x: np.ndarray) -> tuple[int, ...]:
        if x.ndim == 2:
            return (0,)
        if x.ndim == 4:
            return (0, 2, 3)
        raise ShapeError(f"{self.name}: expected 2-D or 4-D input, got {x.shape}")

    def _shape_for(self, x: np.ndarray) -> tuple[int, ...]:
        if x.ndim == 2:
            return (1, self.num_features)
        return (1, self.num_features, 1, 1)

    def eval_scale_shift(self) -> tuple[np.ndarray, np.ndarray]:
        """Eval-mode normalize+affine folded to per-channel scale/shift.

        ``y = x * scale + shift`` with the running statistics baked in.
        Shared by the fast-path forward and the graph compiler's fused
        conv epilogue, so both compute bit-identical factors.
        """
        scale = self.gamma.value / np.sqrt(self.running_var + self.eps)
        shift = self.beta.value - self.running_mean * scale
        return scale, shift

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_float32(x)
        axes = self._reduce_axes(x)
        if x.shape[1] != self.num_features:
            raise ShapeError(
                f"{self.name}: expected {self.num_features} channels, got {x.shape}"
            )
        shape = self._shape_for(x)
        if self._fast_inference():
            # Fused normalize + affine: one multiply-add over the batch
            # instead of materializing x_hat.  The per-channel factors are
            # tiny, so folding them costs nothing per call.
            scale, shift = self.eval_scale_shift()
            out = x * scale.reshape(shape)
            out += shift.reshape(shape)
            return out
        if self.training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            count = x.size // self.num_features
            # Unbiased variance for the running estimate, biased in-batch.
            unbiased = var * count / max(count - 1, 1)
            self.running_mean *= self.momentum
            self.running_mean += (1.0 - self.momentum) * mean
            self.running_var *= self.momentum
            self.running_var += (1.0 - self.momentum) * unbiased
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean.reshape(shape)) * inv_std.reshape(shape)
        if self.training:
            self._cache = (x_hat, inv_std, axes, shape)
        return self.gamma.value.reshape(shape) * x_hat + self.beta.value.reshape(shape)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        x_hat, inv_std, axes, shape = self._require_cache(self._cache, "batch stats")
        grad = as_float32(grad)
        count = grad.size // self.num_features
        self.gamma.grad += (grad * x_hat).sum(axis=axes)
        self.beta.grad += grad.sum(axis=axes)
        g = grad * self.gamma.value.reshape(shape)
        mean_g = g.mean(axis=axes).reshape(shape)
        mean_gx = (g * x_hat).mean(axis=axes).reshape(shape)
        del count
        return (g - mean_g - x_hat * mean_gx) * inv_std.reshape(shape)
