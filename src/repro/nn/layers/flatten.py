"""Shape-manipulation layers."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer, as_float32


class Flatten(Layer):
    """Flatten all non-batch axes: ``(n, ...) -> (n, prod(...))``."""

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name)
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_float32(x)
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        shape = self._require_cache(self._shape, "shape")
        return as_float32(grad).reshape(shape)


class Reshape(Layer):
    """Reshape non-batch axes to a fixed target shape."""

    def __init__(self, target_shape: tuple[int, ...],
                 name: str | None = None) -> None:
        super().__init__(name)
        self.target_shape = tuple(int(d) for d in target_shape)
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_float32(x)
        self._shape = x.shape
        return x.reshape((x.shape[0],) + self.target_shape)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        shape = self._require_cache(self._shape, "shape")
        return as_float32(grad).reshape(shape)
