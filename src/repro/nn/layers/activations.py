"""Elementwise activation layers and stable softmax helpers."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer, as_float32


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis``."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


class ReLU(Layer):
    """Rectified linear unit."""

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_float32(x)
        if self._fast_inference():
            self._mask = None
            return np.maximum(x, np.float32(0.0))
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        mask = self._require_cache(self._mask)
        return np.where(mask, as_float32(grad), 0.0)


class LeakyReLU(Layer):
    """Leaky ReLU with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01,
                 name: str | None = None) -> None:
        super().__init__(name)
        self.negative_slope = float(negative_slope)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_float32(x)
        if self._fast_inference():
            self._mask = None
            return np.where(x > 0, x, np.float32(self.negative_slope) * x)
        self._mask = x > 0
        return np.where(self._mask, x, self.negative_slope * x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        mask = self._require_cache(self._mask)
        grad = as_float32(grad)
        return np.where(mask, grad, self.negative_slope * grad)


class Sigmoid(Layer):
    """Logistic sigmoid."""

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name)
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_float32(x)
        # Split by sign to avoid exp overflow on large-magnitude inputs.
        out = np.empty_like(x)
        positive = x >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
        exp_x = np.exp(x[~positive])
        out[~positive] = exp_x / (1.0 + exp_x)
        self._out = None if self._fast_inference() else out
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        out = self._require_cache(self._out)
        return as_float32(grad) * out * (1.0 - out)


class Tanh(Layer):
    """Hyperbolic tangent."""

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name)
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.tanh(as_float32(x))
        self._out = None if self._fast_inference() else out
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        out = self._require_cache(self._out)
        return as_float32(grad) * (1.0 - out * out)


class Softmax(Layer):
    """Softmax over the last axis.

    Prefer the fused :class:`repro.nn.losses.SoftmaxCrossEntropy` during
    training; this layer exists for inference-time probability heads and for
    models trained with non-CE losses.
    """

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name)
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = softmax(as_float32(x), axis=-1)
        self._out = None if self._fast_inference() else out
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        out = self._require_cache(self._out)
        grad = as_float32(grad)
        dot = (grad * out).sum(axis=-1, keepdims=True)
        return out * (grad - dot)
