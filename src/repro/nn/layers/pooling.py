"""Spatial pooling layers (max, average, global average)."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.layers.base import Layer, as_float32
from repro.nn.layers.conv import (
    col2im,
    conv_output_size,
    im2col,
    resolve_padding,
)


def _pair(value: int | tuple[int, int]) -> tuple[int, int]:
    if isinstance(value, tuple):
        return int(value[0]), int(value[1])
    return int(value), int(value)


class _Pool2D(Layer):
    """Shared im2col plumbing for max/average pooling."""

    def __init__(self, pool_size: int | tuple[int, int],
                 stride: int | tuple[int, int] | None = None,
                 padding: str | int | tuple[int, int] = "valid",
                 name: str | None = None) -> None:
        super().__init__(name)
        self.pool_size = _pair(pool_size)
        self.stride = _pair(stride) if stride is not None else self.pool_size
        self.padding = resolve_padding(padding, self.pool_size)
        self._x_shape: tuple[int, int, int, int] | None = None
        self._out_hw: tuple[int, int] | None = None

    def _unfold(self, x: np.ndarray) -> np.ndarray:
        """Return pooling windows as ``(n*oh*ow*c, kh*kw)`` rows."""
        n, c, h, w = x.shape
        # Treat channels as batch so each window covers one channel only.
        reshaped = x.reshape(n * c, 1, h, w)
        cols, (oh, ow) = im2col(reshaped, self.pool_size, self.stride,
                                self.padding)
        self._x_shape = x.shape
        self._out_hw = (oh, ow)
        return cols

    def _fold(self, dcols: np.ndarray) -> np.ndarray:
        n, c, h, w = self._x_shape
        dx = col2im(dcols, (n * c, 1, h, w), self.pool_size, self.stride,
                    self.padding)
        return dx.reshape(n, c, h, w)

    def _to_nchw(self, values: np.ndarray) -> np.ndarray:
        n, c, _, _ = self._x_shape
        oh, ow = self._out_hw
        return values.reshape(n, c, oh, ow)

    # -- inference fast path ---------------------------------------------
    def _out_size(self, x: np.ndarray) -> tuple[int, int]:
        return (conv_output_size(x.shape[2], self.pool_size[0],
                                 self.stride[0], self.padding[0]),
                conv_output_size(x.shape[3], self.pool_size[1],
                                 self.stride[1], self.padding[1]))

    def _padded_source(self, x: np.ndarray) -> np.ndarray:
        """The zero-padded input, in scratch when padding is active."""
        ph, pw = self.padding
        if not (ph or pw):
            return x
        n, c, h, w = x.shape
        padded = self.scratch("pad", (n, c, h + 2 * ph, w + 2 * pw))
        padded.fill(0.0)
        padded[:, :, ph:ph + h, pw:pw + w] = x
        return padded


class MaxPool2D(_Pool2D):
    """Max pooling; default stride equals pool size (non-overlapping)."""

    def __init__(self, pool_size: int | tuple[int, int] = 2,
                 stride: int | tuple[int, int] | None = None,
                 padding: str | int | tuple[int, int] = "valid",
                 name: str | None = None) -> None:
        super().__init__(pool_size, stride, padding, name)
        self._argmax: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_float32(x)
        if x.ndim != 4:
            raise ShapeError(f"{self.name}: expected NCHW input, got {x.shape}")
        if self._fast_inference():
            return self._forward_inference(x)
        cols = self._unfold(x)
        self._argmax = cols.argmax(axis=1)
        return self._to_nchw(cols.max(axis=1))

    def _forward_inference(self, x: np.ndarray) -> np.ndarray:
        """Eval-mode max pool: no argmax bookkeeping, no column copy.

        Sliding maximum over the (zero-padded) input — one np.maximum per
        kernel tap instead of a full im2col copy, and far faster than a
        tiled multi-axis reduce, whose strided access pattern defeats the
        cache.
        """
        self._argmax = None
        oh, ow = self._out_size(x)
        src = self._padded_source(x)
        sh, sw = self.stride
        acc = self.scratch("acc", (x.shape[0], x.shape[1], oh, ow))
        acc[...] = src[:, :, 0:sh * oh:sh, 0:sw * ow:sw]
        kh, kw = self.pool_size
        for i in range(kh):
            for j in range(kw):
                if i == 0 and j == 0:
                    continue
                np.maximum(acc, src[:, :, i:i + sh * oh:sh, j:j + sw * ow:sw],
                           out=acc)
        return acc.copy()

    def backward(self, grad: np.ndarray) -> np.ndarray:
        argmax = self._require_cache(self._argmax)
        flat = as_float32(grad).reshape(-1)
        kh, kw = self.pool_size
        dcols = np.zeros((flat.shape[0], kh * kw), dtype=np.float32)
        dcols[np.arange(flat.shape[0]), argmax] = flat
        return self._fold(dcols)


class AvgPool2D(_Pool2D):
    """Average pooling; default stride equals pool size."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_float32(x)
        if x.ndim != 4:
            raise ShapeError(f"{self.name}: expected NCHW input, got {x.shape}")
        if self._fast_inference():
            return self._forward_inference(x)
        cols = self._unfold(x)
        return self._to_nchw(cols.mean(axis=1))

    def _forward_inference(self, x: np.ndarray) -> np.ndarray:
        """Eval-mode average pool: sliding accumulation, no column copy."""
        oh, ow = self._out_size(x)
        kh, kw = self.pool_size
        src = self._padded_source(x)
        sh, sw = self.stride
        acc = self.scratch("acc", (x.shape[0], x.shape[1], oh, ow))
        acc.fill(0.0)
        for i in range(kh):
            for j in range(kw):
                acc += src[:, :, i:i + sh * oh:sh, j:j + sw * ow:sw]
        return acc * np.float32(1.0 / (kh * kw))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        self._require_cache(self._x_shape, "shape")
        kh, kw = self.pool_size
        flat = as_float32(grad).reshape(-1, 1)
        dcols = np.repeat(flat / (kh * kw), kh * kw, axis=1)
        return self._fold(dcols)


class GlobalAvgPool2D(Layer):
    """Global average pooling NCHW -> (n, c); Inception's pre-logits pool."""

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name)
        self._x_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_float32(x)
        if x.ndim != 4:
            raise ShapeError(f"{self.name}: expected NCHW input, got {x.shape}")
        if not self._fast_inference():
            self._x_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        n, c, h, w = self._require_cache(self._x_shape, "shape")
        grad = as_float32(grad).reshape(n, c, 1, 1)
        return np.broadcast_to(grad / (h * w), (n, c, h, w)).copy()
