"""Layer implementations for the numpy NN substrate."""
