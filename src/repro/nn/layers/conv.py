"""2-D convolution implemented with im2col.

The im2col transform rewrites every receptive field as a matrix row so the
convolution becomes one large GEMM — the standard way to get acceptable
convolution throughput out of numpy.  Supports rectangular kernels (needed
by the factorized 1xN / Nx1 convolutions of the Inception-V3 family),
arbitrary stride, and ``"same"`` / ``"valid"`` / integer padding.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.initializers import get_initializer
from repro.nn.layers.base import Layer, Parameter, as_float32


def _pair(value: int | tuple[int, int]) -> tuple[int, int]:
    if isinstance(value, tuple):
        return int(value[0]), int(value[1])
    return int(value), int(value)


def resolve_padding(padding: str | int | tuple[int, int],
                    kernel: tuple[int, int]) -> tuple[int, int]:
    """Resolve a padding spec to per-axis pad amounts.

    ``"same"`` keeps spatial size for stride 1 and odd kernels; ``"valid"``
    pads nothing.
    """
    if padding == "same":
        return (kernel[0] - 1) // 2, (kernel[1] - 1) // 2
    if padding == "valid":
        return 0, 0
    if isinstance(padding, (int, tuple)):
        return _pair(padding)
    raise ConfigurationError(f"unknown padding spec {padding!r}")


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a conv/pool along one axis."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"convolution output collapsed: size={size} kernel={kernel} "
            f"stride={stride} pad={pad}"
        )
    return out


def im2col(x: np.ndarray, kernel: tuple[int, int], stride: tuple[int, int],
           pad: tuple[int, int]) -> tuple[np.ndarray, tuple[int, int]]:
    """Unfold NCHW input into ``(batch * oh * ow, c * kh * kw)`` columns.

    Returns the column matrix and the output spatial size ``(oh, ow)``.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = pad
    oh = conv_output_size(h, kh, sh, ph)
    ow = conv_output_size(w, kw, sw, pw)
    if ph or pw:
        x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)), mode="constant")
    # Strided view: (n, c, kh, kw, oh, ow) without copying.
    sn, sc, sh_b, sw_b = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kh, kw, oh, ow),
        strides=(sn, sc, sh_b, sw_b, sh_b * sh, sw_b * sw),
        writeable=False,
    )
    cols = view.transpose(0, 4, 5, 1, 2, 3).reshape(n * oh * ow, c * kh * kw)
    return np.ascontiguousarray(cols), (oh, ow)


def col2im(cols: np.ndarray, x_shape: tuple[int, int, int, int],
           kernel: tuple[int, int], stride: tuple[int, int],
           pad: tuple[int, int]) -> np.ndarray:
    """Fold column gradients back onto the (padded) input, summing overlaps."""
    n, c, h, w = x_shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = pad
    oh = conv_output_size(h, kh, sh, ph)
    ow = conv_output_size(w, kw, sw, pw)
    padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=cols.dtype)
    cols6 = cols.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    for i in range(kh):
        i_max = i + sh * oh
        for j in range(kw):
            j_max = j + sw * ow
            padded[:, :, i:i_max:sh, j:j_max:sw] += cols6[:, :, i, j]
    if ph or pw:
        return padded[:, :, ph:ph + h, pw:pw + w]
    return padded


class Conv2D(Layer):
    """2-D convolution over NCHW inputs.

    Args:
        in_channels: input channel count.
        out_channels: number of filters.
        kernel_size: int or (kh, kw) — rectangular kernels supported.
        stride: int or (sh, sw).
        padding: ``"same"``, ``"valid"``, int, or (ph, pw).
        use_bias: add a per-channel bias (disable when followed by
            batch-norm, as Inception-V3 does).
        weight_init: initializer for the kernel.
        rng: generator for initialization.
    """

    def __init__(self, in_channels: int, out_channels: int,
                 kernel_size: int | tuple[int, int], *,
                 stride: int | tuple[int, int] = 1,
                 padding: str | int | tuple[int, int] = "same",
                 use_bias: bool = True, weight_init: str = "he_normal",
                 rng: np.random.Generator | None = None,
                 name: str | None = None) -> None:
        super().__init__(name)
        rng = rng or np.random.default_rng()
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride)
        self.padding = resolve_padding(padding, self.kernel_size)
        init = get_initializer(weight_init)
        kh, kw = self.kernel_size
        self.weight = Parameter(
            init((out_channels, in_channels, kh, kw), rng),
            name=f"{self.name}.weight",
        )
        self.bias = None
        if use_bias:
            self.bias = Parameter(np.zeros(out_channels, dtype=np.float32),
                                  name=f"{self.name}.bias")
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, int, int, int] | None = None
        self._out_hw: tuple[int, int] | None = None

    def flat_weight(self) -> np.ndarray:
        """The kernel as a GEMM-ready ``(out_channels, c*kh*kw)`` matrix.

        A reshape view of the live parameter — used by both forward paths
        and by the graph compiler's plan extraction.
        """
        return self.weight.value.reshape(self.out_channels, -1)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_float32(x)
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ShapeError(
                f"{self.name}: expected (n, {self.in_channels}, h, w), got {x.shape}"
            )
        if self._fast_inference():
            return self._forward_inference(x)
        cols, (oh, ow) = im2col(x, self.kernel_size, self.stride, self.padding)
        self._cols = cols
        self._x_shape = x.shape
        self._out_hw = (oh, ow)
        flat_w = self.flat_weight()
        out = cols @ flat_w.T
        if self.bias is not None:
            out = out + self.bias.value
        n = x.shape[0]
        return out.reshape(n, oh, ow, self.out_channels).transpose(0, 3, 1, 2)

    def _forward_inference(self, x: np.ndarray) -> np.ndarray:
        """Workspace-reuse forward: no backward caches, scratch im2col.

        The 1x1/stride-1 case (half the convolutions in an Inception
        block) skips im2col entirely — it is a plain channel-mixing GEMM
        on the NCHW layout, and writing it that way also leaves the
        output contiguous without a transpose copy.
        """
        n, c, h, w = x.shape
        self._cols = None  # release any training-time column cache
        kh, kw = self.kernel_size
        sh, sw = self.stride
        ph, pw = self.padding
        flat_w = self.flat_weight()
        if (kh, kw) == (1, 1) and (sh, sw) == (1, 1) and (ph, pw) == (0, 0):
            out = np.empty((n, self.out_channels, h, w), dtype=np.float32)
            np.matmul(flat_w, x.reshape(n, c, h * w),
                      out=out.reshape(n, self.out_channels, h * w))
            if self.bias is not None:
                out += self.bias.value[:, None, None]
            return out
        oh = conv_output_size(h, kh, sh, ph)
        ow = conv_output_size(w, kw, sw, pw)
        if ph or pw:
            src = self.scratch("pad", (n, c, h + 2 * ph, w + 2 * pw))
            src.fill(0.0)
            src[:, :, ph:ph + h, pw:pw + w] = x
        else:
            src = x
        sn, sc, sh_b, sw_b = src.strides
        view = np.lib.stride_tricks.as_strided(
            src,
            shape=(n, c, kh, kw, oh, ow),
            strides=(sn, sc, sh_b, sw_b, sh_b * sh, sw_b * sw),
            writeable=False,
        )
        # Column layout (n, c*kh*kw, oh*ow) instead of the training path's
        # (n*oh*ow, c*kh*kw): the unfold copy is then source-ordered (no
        # transpose), and the batched GEMM writes the NCHW output directly
        # — roughly half the wall time of gemm-then-transpose.
        cols = self.scratch("cols", (n, c * kh * kw, oh * ow))
        cols.reshape(n, c, kh, kw, oh, ow)[...] = view
        out = np.empty((n, self.out_channels, oh, ow), dtype=np.float32)
        np.matmul(flat_w, cols, out=out.reshape(n, self.out_channels, oh * ow))
        if self.bias is not None:
            out += self.bias.value[:, None, None]
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        cols = self._require_cache(self._cols)
        n, _, oh, ow = grad.shape
        grad2d = as_float32(grad).transpose(0, 2, 3, 1).reshape(-1, self.out_channels)
        flat_w = self.weight.value.reshape(self.out_channels, -1)
        self.weight.grad += (grad2d.T @ cols).reshape(self.weight.value.shape)
        if self.bias is not None:
            self.bias.grad += grad2d.sum(axis=0)
        dcols = grad2d @ flat_w
        return col2im(dcols, self._x_shape, self.kernel_size, self.stride,
                      self.padding)
