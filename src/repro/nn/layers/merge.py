"""Multi-branch composites used by Inception-style blocks.

:class:`ParallelBranches` feeds the same input through several branch
sub-networks and concatenates their outputs along the channel axis — exactly
the structure of an Inception module.  Backward splits the incoming gradient
per branch and sums the branch input-gradients.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.layers.base import Layer, as_float32


class ParallelBranches(Layer):
    """Apply branches to a shared input, concatenate along ``axis``.

    Args:
        branches: branch sub-networks (any :class:`Layer`, usually
            :class:`~repro.nn.layers.sequential.Sequential`).
        axis: concatenation axis; 1 (channels) for NCHW feature maps.
    """

    def __init__(self, branches: list[Layer], *, axis: int = 1,
                 name: str | None = None) -> None:
        super().__init__(name)
        if not branches:
            raise ConfigurationError("ParallelBranches requires >=1 branch")
        self.branches = list(branches)
        self.axis = int(axis)
        self._split_sizes: list[int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_float32(x)
        outputs = [branch.forward(x) for branch in self.branches]
        ref = outputs[0].shape
        for out in outputs[1:]:
            same = list(out.shape)
            same[self.axis] = ref[self.axis]
            if tuple(same) != ref:
                raise ShapeError(
                    f"{self.name}: branch outputs disagree off-axis: "
                    f"{[o.shape for o in outputs]}"
                )
        self._split_sizes = [out.shape[self.axis] for out in outputs]
        return np.concatenate(outputs, axis=self.axis)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        sizes = self._require_cache(self._split_sizes, "split sizes")
        grad = as_float32(grad)
        boundaries = np.cumsum(sizes)[:-1]
        pieces = np.split(grad, boundaries, axis=self.axis)
        dx = self.branches[0].backward(pieces[0])
        for branch, piece in zip(self.branches[1:], pieces[1:]):
            dx = dx + branch.backward(piece)
        return dx

    def children(self) -> Iterator[Layer]:
        yield from self.branches


class Residual(Layer):
    """Residual connection ``y = x + f(x)`` (shapes must match)."""

    def __init__(self, inner: Layer, name: str | None = None) -> None:
        super().__init__(name)
        self.inner = inner

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_float32(x)
        out = self.inner.forward(x)
        if out.shape != x.shape:
            raise ShapeError(
                f"{self.name}: residual shape mismatch {out.shape} vs {x.shape}"
            )
        return x + out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad = as_float32(grad)
        return grad + self.inner.backward(grad)
