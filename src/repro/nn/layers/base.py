"""Core abstractions of the neural-network substrate.

The substrate is a classic layer-based framework: each :class:`Layer` owns
its :class:`Parameter` objects and implements an explicit ``forward`` /
``backward`` pair.  There is no tape-based autograd — backward passes are
hand-derived, which keeps the numpy implementation transparent and fast and
lets the test suite verify every layer against numerical gradients
(:mod:`repro.nn.gradcheck`).

Conventions
-----------
* Image tensors are NCHW ``(batch, channels, height, width)`` float32.
* Sequence tensors are ``(batch, time, features)`` float32.
* ``forward`` caches whatever the matching ``backward`` needs; calling
  ``backward`` before ``forward`` raises :class:`ReproError`.
* ``backward`` accumulates into ``Parameter.grad`` (callers zero grads via
  the optimizer) and returns the gradient w.r.t. the layer input.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.exceptions import ReproError
from repro.nn.runtime.mode import fast_path_enabled
from repro.nn.runtime.workspace import Workspace


class Parameter:
    """A trainable array together with its accumulated gradient.

    Attributes:
        value: the parameter tensor (float32).
        grad: gradient accumulated since the last ``zero_grad``.
        name: dotted path used for serialization and debugging.
        trainable: frozen parameters are skipped by optimizers; gradients
            are still computed so gradient checking works uniformly.
    """

    def __init__(self, value: np.ndarray, name: str = "param",
                 trainable: bool = True) -> None:
        self.value = np.asarray(value, dtype=np.float32)
        self.grad = np.zeros_like(self.value)
        self.name = name
        self.trainable = trainable

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero in place."""
        self.grad.fill(0.0)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape

    def __repr__(self) -> str:
        return f"Parameter(name={self.name!r}, shape={self.value.shape})"


class Layer:
    """Base class for all layers.

    Subclasses implement :meth:`forward` and :meth:`backward` and register
    parameters by assigning :class:`Parameter` instances as attributes.
    """

    def __init__(self, name: str | None = None) -> None:
        self.name = name or type(self).__name__
        self.training = True
        self._workspace: Workspace | None = None

    # -- computation ------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the layer on a batch and cache state for backward."""
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Propagate ``grad`` (dL/d output) back; return dL/d input."""
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # -- parameter traversal ----------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        """Yield this layer's parameters, then recurse into sub-layers.

        Order is deterministic (attribute insertion order), which the
        serialization module relies on.
        """
        for attr in vars(self).values():
            if isinstance(attr, Parameter):
                yield attr
        for child in self.children():
            yield from child.parameters()

    def children(self) -> Iterator["Layer"]:
        """Yield direct sub-layers in deterministic order."""
        for attr in vars(self).values():
            if isinstance(attr, Layer):
                yield attr
            elif isinstance(attr, (list, tuple)):
                for item in attr:
                    if isinstance(item, Layer):
                        yield item

    def set_training(self, training: bool) -> None:
        """Switch train/eval behaviour (dropout, batch-norm) recursively."""
        self.training = training
        for child in self.children():
            child.set_training(training)

    def num_parameters(self) -> int:
        """Total number of scalar parameters in this layer tree."""
        return sum(int(np.prod(p.shape)) for p in self.parameters())

    # -- inference fast path ----------------------------------------------
    def set_workspace(self, workspace: Workspace | None) -> None:
        """Attach a scratch arena to this layer tree (None detaches)."""
        self._workspace = workspace
        for child in self.children():
            child.set_workspace(workspace)

    def _fast_inference(self) -> bool:
        """Whether this forward call may skip backward caches."""
        return not self.training and fast_path_enabled()

    def scratch(self, role: str, shape: tuple[int, ...],
                dtype: np.dtype | type = np.float32) -> np.ndarray:
        """An uninitialized scratch buffer, reused across forward calls.

        Falls back to a fresh ``np.empty`` when no workspace is attached,
        so fast-path code never needs to branch on arena presence.  The
        buffer must not escape the current ``forward`` call.
        """
        if self._workspace is None:
            return np.empty(shape, dtype=dtype)
        return self._workspace.buffer(f"{self.name}.{role}", shape, dtype)

    # -- helpers -----------------------------------------------------------
    def _require_cache(self, cache: object, what: str = "input"):
        """Raise a clear error if backward is called before forward."""
        if cache is None:
            raise ReproError(
                f"{self.name}: backward called before forward ({what} cache empty)"
            )
        return cache

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def as_float32(x: np.ndarray) -> np.ndarray:
    """View/convert an input batch as float32 without copying when possible."""
    return np.ascontiguousarray(x, dtype=np.float32)


def assert_float32(x: np.ndarray, where: str = "tensor") -> np.ndarray:
    """Debug guard against silent float64 upcasts on the forward path.

    Python-scalar arithmetic and default-dtype numpy constructors upcast
    float32 arrays to float64, which doubles memory traffic and silently
    halves GEMM throughput.  Sprinkle this around suspect code during
    development; it returns its input so it can wrap expressions inline.
    """
    if x.dtype != np.float32:
        raise ReproError(f"{where}: expected float32, got {x.dtype}")
    return x
