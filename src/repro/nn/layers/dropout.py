"""Inverted dropout regularization."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn.layers.base import Layer, as_float32


class Dropout(Layer):
    """Inverted dropout: active in training, identity in eval.

    Args:
        rate: probability of zeroing each activation, in [0, 1).
        rng: generator used to draw masks; defaults to a fresh generator
            (pass one explicitly for reproducible training runs).
    """

    def __init__(self, rate: float = 0.5, *,
                 rng: np.random.Generator | None = None,
                 name: str | None = None) -> None:
        super().__init__(name)
        if not 0.0 <= rate < 1.0:
            raise ConfigurationError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self.rng = rng or np.random.default_rng()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_float32(x)
        if not self.training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self.rng.random(x.shape) < keep).astype(np.float32) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad = as_float32(grad)
        if self._mask is None:
            return grad
        return grad * self._mask
