"""Sequential layer container."""

from __future__ import annotations

import time
from typing import Iterator

import numpy as np

from repro.nn.layers.base import Layer
from repro.nn.runtime import profiling


class Sequential(Layer):
    """Chain of layers applied in order; backward runs in reverse."""

    def __init__(self, layers: list[Layer] | None = None,
                 name: str | None = None) -> None:
        super().__init__(name)
        self.layers: list[Layer] = list(layers or [])

    def add(self, layer: Layer) -> "Sequential":
        """Append a layer; returns self for chaining."""
        self.layers.append(layer)
        return self

    def forward(self, x: np.ndarray) -> np.ndarray:
        if profiling.should_sample():
            return self._forward_profiled(x)
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def _forward_profiled(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            start = time.perf_counter()
            x = layer.forward(x)
            profiling.layer_timer(layer.name).observe(
                time.perf_counter() - start)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def children(self) -> Iterator[Layer]:
        yield from self.layers

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Layer:
        return self.layers[index]

    def __repr__(self) -> str:
        inner = ", ".join(type(layer).__name__ for layer in self.layers)
        return f"Sequential([{inner}])"
