"""Loss functions.

Each loss exposes ``forward(predictions, targets) -> float`` and
``backward() -> ndarray`` (gradient w.r.t. the predictions, already divided
by the batch size so optimizer steps are batch-size invariant).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ReproError, ShapeError
from repro.nn.layers.activations import log_softmax, softmax


class Loss:
    """Base class for losses."""

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(predictions, targets)

    def _require(self, cache: object):
        if cache is None:
            raise ReproError(f"{type(self).__name__}: backward before forward")
        return cache


class SoftmaxCrossEntropy(Loss):
    """Fused softmax + cross-entropy on integer class labels.

    Supports optional label smoothing and per-class weights (useful for the
    imbalanced Table-1 class distribution).
    """

    def __init__(self, *, label_smoothing: float = 0.0,
                 class_weights: np.ndarray | None = None) -> None:
        if not 0.0 <= label_smoothing < 1.0:
            raise ShapeError("label_smoothing must be in [0, 1)")
        self.label_smoothing = float(label_smoothing)
        self.class_weights = (
            None if class_weights is None
            else np.asarray(class_weights, dtype=np.float32)
        )
        self._cache: tuple | None = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        logits = np.asarray(predictions, dtype=np.float32)
        labels = np.asarray(targets)
        if logits.ndim != 2:
            raise ShapeError(f"expected (batch, classes) logits, got {logits.shape}")
        if labels.shape != (logits.shape[0],):
            raise ShapeError(
                f"expected {logits.shape[0]} integer labels, got shape {labels.shape}"
            )
        n, k = logits.shape
        log_p = log_softmax(logits, axis=1)
        smooth = self.label_smoothing
        target_dist = np.full((n, k), smooth / k, dtype=np.float32)
        target_dist[np.arange(n), labels] += 1.0 - smooth
        weights = np.ones(n, dtype=np.float32)
        if self.class_weights is not None:
            weights = self.class_weights[labels]
        per_sample = -(target_dist * log_p).sum(axis=1) * weights
        self._cache = (softmax(logits, axis=1), target_dist, weights, n)
        return float(per_sample.mean())

    def backward(self) -> np.ndarray:
        probs, target_dist, weights, n = self._require(self._cache)
        return (probs - target_dist) * weights[:, None] / n


class MSELoss(Loss):
    """Mean squared error; the paper's dCNN distillation objective.

    The paper trains the dCNN "by computing the L2 euclidean distance"
    between the dCNN's output on the distorted frame and the teacher CNN's
    output on the clean frame (§4.3).
    """

    def __init__(self) -> None:
        self._cache: tuple | None = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        pred = np.asarray(predictions, dtype=np.float32)
        tgt = np.asarray(targets, dtype=np.float32)
        if pred.shape != tgt.shape:
            raise ShapeError(f"shape mismatch: {pred.shape} vs {tgt.shape}")
        diff = pred - tgt
        self._cache = (diff, pred.shape[0])
        return float(np.mean(diff * diff))

    def backward(self) -> np.ndarray:
        diff, _ = self._require(self._cache)
        return 2.0 * diff / diff.size


class HingeLoss(Loss):
    """Multi-class hinge (Crammer-Singer style) on integer labels.

    Provided for completeness of the SVM comparison; the production SVM in
    :mod:`repro.ml.svm` solves the kernelized dual instead.
    """

    def __init__(self, margin: float = 1.0) -> None:
        self.margin = float(margin)
        self._cache: tuple | None = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        scores = np.asarray(predictions, dtype=np.float32)
        labels = np.asarray(targets)
        n = scores.shape[0]
        correct = scores[np.arange(n), labels][:, None]
        margins = np.maximum(0.0, scores - correct + self.margin)
        margins[np.arange(n), labels] = 0.0
        self._cache = (margins, labels, n)
        return float(margins.sum() / n)

    def backward(self) -> np.ndarray:
        margins, labels, n = self._require(self._cache)
        grad = (margins > 0).astype(np.float32)
        grad[np.arange(n), labels] = -grad.sum(axis=1)
        return grad / n
