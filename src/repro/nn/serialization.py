"""Weight checkpointing.

Weights are stored in ``.npz`` archives keyed by parameter index and name.
Loading validates both the parameter count and every shape, so a checkpoint
can only be restored into a structurally identical network.  Batch-norm
running statistics are saved alongside trainable parameters.
"""

from __future__ import annotations

import os
from typing import Iterable

import numpy as np

from repro.exceptions import SerializationError
from repro.nn.layers.base import Layer
from repro.nn.layers.batchnorm import BatchNorm


def _batchnorm_layers(network: Layer) -> Iterable[BatchNorm]:
    if isinstance(network, BatchNorm):
        yield network
    for child in network.children():
        yield from _batchnorm_layers(child)


def save_weights(network: Layer, path: str) -> None:
    """Save all parameters and batch-norm running stats to ``path`` (.npz)."""
    arrays: dict[str, np.ndarray] = {}
    for index, param in enumerate(network.parameters()):
        arrays[f"param_{index:04d}"] = param.value
        arrays[f"name_{index:04d}"] = np.array(param.name)
    for index, bn_layer in enumerate(_batchnorm_layers(network)):
        arrays[f"bn_mean_{index:04d}"] = bn_layer.running_mean
        arrays[f"bn_var_{index:04d}"] = bn_layer.running_var
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **arrays)


def load_weights(network: Layer, path: str, *, strict: bool = True) -> None:
    """Restore parameters saved by :func:`save_weights` into ``network``.

    With ``strict=False``, trailing parameters present in the network but
    absent from the checkpoint are left untouched (used when fine-tuning a
    network whose classifier head was replaced).
    """
    if not os.path.exists(path):
        raise SerializationError(f"checkpoint not found: {path}")
    with np.load(path, allow_pickle=False) as archive:
        params = list(network.parameters())
        saved = sorted(key for key in archive.files if key.startswith("param_"))
        if strict and len(saved) != len(params):
            raise SerializationError(
                f"parameter count mismatch: checkpoint has {len(saved)}, "
                f"network has {len(params)}"
            )
        for key, param in zip(saved, params):
            value = archive[key]
            if value.shape != param.value.shape:
                if strict:
                    raise SerializationError(
                        f"shape mismatch for {param.name}: checkpoint "
                        f"{value.shape} vs network {param.value.shape}"
                    )
                continue
            param.value = value.astype(np.float32)
        bn_layers = list(_batchnorm_layers(network))
        means = sorted(k for k in archive.files if k.startswith("bn_mean_"))
        for key, bn_layer in zip(means, bn_layers):
            stats = archive[key]
            if stats.shape == bn_layer.running_mean.shape:
                bn_layer.running_mean = stats.astype(np.float32)
        variances = sorted(k for k in archive.files if k.startswith("bn_var_"))
        for key, bn_layer in zip(variances, bn_layers):
            stats = archive[key]
            if stats.shape == bn_layer.running_var.shape:
                bn_layer.running_var = stats.astype(np.float32)


def copy_weights(source: Layer, target: Layer, *, strict: bool = True) -> int:
    """Copy parameters layer-order-wise from ``source`` into ``target``.

    Returns the number of parameters copied.  Used to initialize a dCNN
    student from the trained teacher CNN (paper §4.3) without touching disk.
    """
    src = list(source.parameters())
    dst = list(target.parameters())
    if strict and len(src) != len(dst):
        raise SerializationError(
            f"parameter count mismatch: source {len(src)} vs target {len(dst)}"
        )
    copied = 0
    for s_param, d_param in zip(src, dst):
        if s_param.value.shape != d_param.value.shape:
            if strict:
                raise SerializationError(
                    f"shape mismatch: {s_param.name} {s_param.value.shape} vs "
                    f"{d_param.name} {d_param.value.shape}"
                )
            continue
        d_param.value = s_param.value.copy()
        copied += 1
    src_bn = list(_batchnorm_layers(source))
    dst_bn = list(_batchnorm_layers(target))
    for s_layer, d_layer in zip(src_bn, dst_bn):
        if s_layer.running_mean.shape == d_layer.running_mean.shape:
            d_layer.running_mean = s_layer.running_mean.copy()
            d_layer.running_var = s_layer.running_var.copy()
    return copied
