"""Process-pool execution of flushed micro-batches.

NumPy releases the GIL inside BLAS kernels, but the serving forward pass
is a long chain of *short* kernels stitched together with Python — layer
dispatch, reshapes, activation ufuncs — so threads serialize on the GIL
almost immediately.  Processes sidestep that: each worker owns a full
interpreter and materializes the model once from a pickle parked in
:mod:`multiprocessing.shared_memory`, and per-batch traffic moves through
preallocated shared arrays (inputs written by the parent, probabilities
written back by the workers), so nothing large crosses a pipe per batch.

Sharding is deterministic: a flushed batch is split into contiguous
slices in request order, and eval-mode layers have no cross-sample
coupling, so a 4-worker verdict stream matches the single-worker one —
predictions exactly, probabilities to BLAS rounding (GEMM blocking
depends on the row count, so summation order shifts by ~1e-9 when the
batch is sliced).  The parallel path changes wall-clock, never verdicts.

Worker count is an explicit opt-in (``--workers N``); the default of 1
bypasses this module entirely and is bit-exact with the in-process path
because it *is* the in-process path.
"""

from __future__ import annotations

import os
import pickle
import time
from multiprocessing import get_context, shared_memory

import numpy as np

from repro.core.ensemble import DegradedPrediction
from repro.exceptions import ConfigurationError
from repro.nn.compile.backends import using_backend
from repro.obs.metrics import get_registry

# -- worker-process state ----------------------------------------------------

_WORKER_MODEL = None
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}


def _silence_resource_tracker() -> None:
    """Keep worker-side attachments out of the resource tracker.

    Workers attach segments the parent owns and will unlink; without
    this, each worker's resource tracker re-registers the segment and
    then either double-unlinks it or warns about a leak at shutdown
    (Python < 3.13 has no ``track=False``).
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def register(name: str, rtype: str) -> None:
        if rtype == "shared_memory":
            return
        original(name, rtype)

    resource_tracker.register = register


def _worker_init(model_block: str, model_size: int) -> None:
    """Pool initializer: materialize the model once per worker."""
    global _WORKER_MODEL
    _silence_resource_tracker()
    segment = shared_memory.SharedMemory(name=model_block)
    try:
        _WORKER_MODEL = pickle.loads(bytes(segment.buf[:model_size]))
    finally:
        segment.close()


def _attached(name: str) -> shared_memory.SharedMemory:
    segment = _ATTACHED.get(name)
    if segment is None:
        segment = shared_memory.SharedMemory(name=name)
        _ATTACHED[name] = segment
    return segment


def _view(spec: tuple[str, tuple[int, ...], str] | None) -> np.ndarray | None:
    """An ndarray over a shared block described by (name, shape, dtype)."""
    if spec is None:
        return None
    name, shape, dtype = spec
    return np.ndarray(shape, dtype=dtype, buffer=_attached(name).buf)


def _worker_run(task: dict) -> dict:
    """Classify one contiguous shard; write probabilities into the output.

    Besides the shard result, the worker reports its wall-clock interval
    (``perf_counter`` is CLOCK_MONOTONIC on Linux, comparable across the
    forked processes) and a :meth:`~repro.obs.metrics.MetricsRegistry.drain`
    of its process-local registry — the fork-aware ``get_registry`` gives
    each worker a fresh registry, so the drain is a clean delta the
    parent folds back in.
    """
    start = time.perf_counter()
    lo, hi = task["lo"], task["hi"]
    images = _view(task["images"])
    imu = _view(task["imu"])
    kwargs = {}
    if images is not None:
        kwargs["images"] = images[lo:hi]
    if imu is not None:
        kwargs["imu"] = imu[lo:hi]
    # Workers recompile plans lazily (plans never ship in the pickle),
    # so the backend choice must ride along with every task.
    with using_backend(task["backend"]):
        result = _WORKER_MODEL.predict_degraded(**kwargs)
    out = _view(task["out"])
    out[lo:hi] = result.probabilities
    return {
        "lo": lo, "hi": hi,
        "degraded": result.degraded,
        "missing": tuple(result.missing),
        "start": start, "end": time.perf_counter(),
        "metrics": get_registry().drain(),
    }


# -- parent-side executor ----------------------------------------------------

class ParallelExecutor:
    """Shard ``predict_degraded`` batches across a process pool.

    Args:
        model: a trained ensemble (anything with ``predict_degraded``).
            Must be picklable — weights ship to workers exactly once.
        workers: process count; 1 short-circuits to in-process execution.
        backend: inference backend name the shards execute under (both
            in the workers and on the in-process fallback path).

    The executor presents the model's own ``predict_degraded`` surface,
    so :class:`~repro.serving.server.InferenceServer` can treat it as a
    drop-in model.  Call :meth:`close` (or use as a context manager) to
    release the pool and the shared segments.
    """

    def __init__(self, model, *, workers: int = 1,
                 backend: str = "numpy-fast") -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.model = model
        self.workers = int(workers)
        self.backend = backend
        #: Shard intervals of the last pooled batch, as
        #: ``(lo, hi, start, end)`` perf_counter tuples; empty when the
        #: batch ran in-process.  The server turns these into trace spans.
        self.last_shards: list[tuple[int, int, float, float]] = []
        self._shard_hist = get_registry().histogram(
            "serving_executor_shard_seconds",
            "Wall-clock time of one worker shard")
        self._pool = None
        self._model_block: shared_memory.SharedMemory | None = None
        self._blocks: dict[str, shared_memory.SharedMemory] = {}
        self._out_spec: tuple[int, str] | None = None  # (classes, dtype)
        if self.workers > 1:
            payload = pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL)
            self._model_block = shared_memory.SharedMemory(
                create=True, size=len(payload))
            self._model_block.buf[:len(payload)] = payload
            context = get_context("fork")
            self._pool = context.Pool(
                self.workers, initializer=_worker_init,
                initargs=(self._model_block.name, len(payload)))

    # -- shared-array plumbing -------------------------------------------
    def _block(self, tag: str, nbytes: int) -> shared_memory.SharedMemory:
        """A grow-only shared block for ``tag`` with at least ``nbytes``."""
        segment = self._blocks.get(tag)
        if segment is not None and segment.size >= nbytes:
            return segment
        if segment is not None:
            segment.close()
            segment.unlink()
        segment = shared_memory.SharedMemory(create=True, size=nbytes)
        self._blocks[tag] = segment
        return segment

    def _share(self, tag: str, array: np.ndarray
               ) -> tuple[str, tuple[int, ...], str]:
        """Copy ``array`` into the tag's shared block; return its spec."""
        array = np.ascontiguousarray(array)
        segment = self._block(tag, array.nbytes)
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        view[...] = array
        return segment.name, array.shape, array.dtype.str

    def _probe_output(self, images, imu) -> tuple[int, str]:
        """Class count / dtype of the probability matrix (cached)."""
        if self._out_spec is None:
            with using_backend(self.backend):
                probe = self.model.predict_degraded(
                    images=None if images is None else images[:1],
                    imu=None if imu is None else imu[:1])
            self._out_spec = (int(probe.probabilities.shape[1]),
                              probe.probabilities.dtype.str)
        return self._out_spec

    # -- inference -------------------------------------------------------
    def predict_degraded(self, *, images: np.ndarray | None = None,
                         imu: np.ndarray | None = None) -> DegradedPrediction:
        """Model-compatible verdict batch, sharded across the pool."""
        if self._pool is None:
            self.last_shards = []
            with using_backend(self.backend):
                return self.model.predict_degraded(images=images, imu=imu)
        count = len(images if images is not None else imu)
        shards = min(self.workers, count)
        if shards < 2:
            self.last_shards = []
            with using_backend(self.backend):
                return self.model.predict_degraded(images=images, imu=imu)
        classes, out_dtype = self._probe_output(images, imu)
        image_spec = (None if images is None
                      else self._share("images", np.asarray(images)))
        imu_spec = None if imu is None else self._share("imu", np.asarray(imu))
        out_segment = self._block(
            "out", count * classes * np.dtype(out_dtype).itemsize)
        out_spec = (out_segment.name, (count, classes), out_dtype)
        bounds = np.linspace(0, count, shards + 1).astype(int)
        tasks = [
            {"lo": int(lo), "hi": int(hi), "images": image_spec,
             "imu": imu_spec, "out": out_spec, "backend": self.backend}
            for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo
        ]
        metas = self._pool.map(_worker_run, tasks)
        probabilities = np.ndarray((count, classes), dtype=out_dtype,
                                   buffer=out_segment.buf).copy()
        registry = get_registry()
        self.last_shards = []
        for meta in metas:
            self.last_shards.append(
                (meta["lo"], meta["hi"], meta["start"], meta["end"]))
            self._shard_hist.observe(meta["end"] - meta["start"])
            registry.merge(meta["metrics"])
        degraded = metas[0]["degraded"]
        missing = metas[0]["missing"]
        return DegradedPrediction(
            probabilities=probabilities,
            predictions=probabilities.argmax(axis=1),
            confidence=probabilities.max(axis=1),
            degraded=degraded,
            missing=missing,
        )

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Tear down the pool and release every shared segment."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
        for segment in self._blocks.values():
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # already gone (interpreter teardown)
                pass
        self._blocks.clear()
        if self._model_block is not None:
            self._model_block.close()
            try:
                self._model_block.unlink()
            except FileNotFoundError:
                pass
            self._model_block = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def default_worker_count() -> int:
    """A sensible ``--workers`` default for this machine (min 1)."""
    return max(1, (os.cpu_count() or 1) - 1)
