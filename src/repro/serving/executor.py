"""Persistent-worker parallel execution of flushed micro-batches.

NumPy releases the GIL inside BLAS kernels, but the serving forward pass
is a long chain of *short* kernels stitched together with Python — layer
dispatch, reshapes, activation ufuncs — so threads serialize on the GIL
almost immediately.  Processes sidestep that, and this module keeps them
*hot*: N long-lived workers are forked once per executor, inherit the
model weights copy-on-write at spawn (never re-pickled per flush), pin
their compiled-backend plans with a probe pass before serving, and then
sit on a pair of preallocated shared-memory rings
(:class:`~repro.serving.ring.SlotRing`).  A micro-batch handoff writes
the input slab into a claimed request slot and publishes it with an
index write; the worker writes probabilities into a response slot the
same way.  Nothing large crosses a pipe, ever — the fork-per-flush pool
this replaces spent more time pickling tasks than running GEMMs and
benchmarked at 0.34x.

Sharding is deterministic: a flushed batch is split into contiguous
slices in request order, and eval-mode layers have no cross-sample
coupling, so an N-worker verdict stream matches the in-process one —
predictions exactly, probabilities to BLAS rounding (GEMM blocking
depends on the row count, so summation order shifts by ~1e-9 when the
batch is sliced).  The parallel path changes wall-clock, never verdicts.

Crash handling is part of the contract: :meth:`ParallelExecutor.collect`
detects a dead or torn-slot worker, marks it for respawn with
exponential backoff, drains the surviving shards so no stale response
lingers, and raises :class:`~repro.exceptions.WorkerCrashError` — the
server's dispatch-failure path requeues the batch exactly once.  When
every worker is down and inside its backoff window, batches fall back
to in-process execution rather than stalling.  Backpressure is never
mistaken for a crash: a submit that finds a request ring full drains
the worker's finished responses into a parent-side stash so the
pipeline keeps moving, and a ring-geometry rebuild (new modality,
oversized batch) is deferred — served in-process — while earlier
tickets still have jobs riding the rings it would tear down.

``workers=0`` bypasses this module's process machinery entirely and is
bit-exact with the plain in-process path because it *is* that path.
"""

from __future__ import annotations

import itertools
import os
import pickle
import signal
import struct
import time
from dataclasses import dataclass, field
from multiprocessing import get_context, shared_memory

import numpy as np

from repro.core.ensemble import DegradedPrediction
from repro.exceptions import (
    ConfigurationError,
    ServingError,
    TornSlotError,
    WorkerCrashError,
)
from repro.nn.compile.backends import using_backend, warm_plans
from repro.obs.metrics import HANDOFF_BUCKETS, get_registry
from repro.serving.ring import SlotRing

#: Slots per ring: bounds how many batches may be in flight per worker
#: before submission backpressures (8 covers every realistic step).
RING_SLOTS = 8

#: ``job_id`` 0 is the shutdown sentinel — workers exit on popping it.
SHUTDOWN_JOB = 0

#: Returned by ``_publish_job`` when the worker is alive but its request
#: ring stayed full past the deadline — backpressure, not a crash.
_BUSY = object()

#: Request slot header: job_id, n_rows, has_images, has_imu, t_publish.
_REQ_HEADER = struct.Struct("<QQQQd")
#: Response slot header: job_id, n_rows, degraded, meta_len, t_pickup,
#: t_done (perf_counter is CLOCK_MONOTONIC on Linux — comparable across
#: forked processes, so the parent computes handoff latency directly).
_RESP_HEADER = struct.Struct("<QQQQdd")

#: Status block: one page of u64 flags/counters per worker, shared both
#: ways — the parent flips HOLD (chaos lever), the worker owns the rest.
STATUS_SLOTS = 8
STATUS_HEARTBEAT = 0      # incremented every idle loop — liveness probe
STATUS_PLANS_PINNED = 1   # set once the spawn-time probe pass completes
STATUS_HOLD = 2           # parent-set: park after popping the next job
STATUS_JOBS = 3           # jobs completed since spawn
STATUS_BUSY_NS = 4        # cumulative pickup-to-done nanoseconds


def _silence_resource_tracker() -> None:
    """Keep worker-side attachments out of the resource tracker.

    Workers attach segments the parent owns and will unlink; without
    this, each worker's resource tracker re-registers the segment and
    then either double-unlinks it or warns about a leak at shutdown
    (Python < 3.13 has no ``track=False``).
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def register(name: str, rtype: str) -> None:
        if rtype == "shared_memory":
            return
        original(name, rtype)

    resource_tracker.register = register


@dataclass(frozen=True)
class _Geometry:
    """Fixed slab layout shared by both ends of a worker's rings."""

    max_rows: int
    img_shape: tuple[int, ...]      # per-sample; () when stream absent
    img_dtype: str
    imu_shape: tuple[int, ...]
    imu_dtype: str
    classes: int
    prob_dtype: str
    meta_max: int

    @property
    def img_slab(self) -> int:
        if not self.img_shape:
            return 0
        return self.max_rows * int(np.prod(self.img_shape)) * \
            np.dtype(self.img_dtype).itemsize

    @property
    def imu_slab(self) -> int:
        if not self.imu_shape:
            return 0
        return self.max_rows * int(np.prod(self.imu_shape)) * \
            np.dtype(self.imu_dtype).itemsize

    @property
    def request_payload(self) -> int:
        return _REQ_HEADER.size + self.img_slab + self.imu_slab

    @property
    def prob_slab(self) -> int:
        return self.max_rows * self.classes * \
            np.dtype(self.prob_dtype).itemsize

    @property
    def response_payload(self) -> int:
        return _RESP_HEADER.size + self.prob_slab + self.meta_max

    def fits(self, images, imu, count: int) -> bool:
        """Whether a batch can ride the rings this geometry sized."""
        if count > self.max_rows:
            return False
        if images is not None and tuple(images.shape[1:]) != self.img_shape:
            return False
        if imu is not None and tuple(imu.shape[1:]) != self.imu_shape:
            return False
        return True


# -- worker process ----------------------------------------------------------

def _read_slab(payload, offset: int, rows: int, shape: tuple[int, ...],
               dtype: str) -> np.ndarray:
    """Copy ``rows`` samples out of a request slab into a fresh array."""
    count = rows * int(np.prod(shape))
    flat = np.frombuffer(payload, dtype=np.dtype(dtype), count=count,
                         offset=offset)
    return flat.reshape((rows, *shape)).copy()


def _encode_meta(error: str | None, result, meta_max: int) -> bytes:
    """Pickle the response meta, degrading until it fits its slab.

    Metrics go first (best-effort), then the error repr / missing tuple
    is truncated — an oversized meta must degrade the report, never
    crash the worker (the slab slice assignment would raise otherwise,
    converting a reportable model error into a crash + requeue cycle).
    """
    meta = {"error": error} if error else {
        "missing": tuple(result.missing),
        "metrics": get_registry().drain(),
    }
    blob = pickle.dumps(meta, protocol=pickle.HIGHEST_PROTOCOL)
    if len(blob) <= meta_max:
        return blob
    meta.pop("metrics", None)   # metrics are best-effort
    blob = pickle.dumps(meta, protocol=pickle.HIGHEST_PROTOCOL)
    if len(blob) <= meta_max:
        return blob
    # meta_max // 8 characters pickle well under meta_max bytes even if
    # every character needs four UTF-8 bytes.
    if error:
        meta = {"error": error[:meta_max // 8]}
    else:
        meta = {"missing": tuple(str(m)[:64]
                                 for m in list(result.missing)[:16])}
    return pickle.dumps(meta, protocol=pickle.HIGHEST_PROTOCOL)


def _worker_main(model, backend: str, geometry: _Geometry, req_name: str,
                 resp_name: str, status_name: str) -> None:
    """The worker loop: pop request slots, predict, publish responses.

    Runs in a forked child: ``model`` arrived through fork-time memory
    inheritance (copy-on-write — the weights were never pickled), and
    the three names attach the parent-owned shared segments.  The first
    act is a probe pass that pins the compiled plans for this backend,
    announced through the status block so tests and respawn checks can
    assert on it.
    """
    _silence_resource_tracker()
    req_shm = shared_memory.SharedMemory(name=req_name)
    resp_shm = shared_memory.SharedMemory(name=resp_name)
    status_shm = shared_memory.SharedMemory(name=status_name)
    status = np.ndarray((STATUS_SLOTS,), dtype=np.uint64,
                        buffer=status_shm.buf)
    requests = SlotRing(req_shm.buf, capacity=RING_SLOTS,
                        slot_payload=geometry.request_payload)
    responses = SlotRing(resp_shm.buf, capacity=RING_SLOTS,
                         slot_payload=geometry.response_payload)
    warm_plans(
        model, backend,
        images=(np.zeros((1, *geometry.img_shape),
                         dtype=geometry.img_dtype)
                if geometry.img_shape else None),
        imu=(np.zeros((1, *geometry.imu_shape), dtype=geometry.imu_dtype)
             if geometry.imu_shape else None))
    status[STATUS_PLANS_PINNED] = 1
    parent = os.getppid()
    idle_sleep = 0.0
    imu_offset = _REQ_HEADER.size + geometry.img_slab
    while True:
        item = requests.try_pop()
        if item is None:
            status[STATUS_HEARTBEAT] += 1
            if os.getppid() != parent:
                break       # orphaned: the server process is gone
            # Spin hot for a moment, then back off to bounded sleeps so
            # an idle worker costs ~nothing while a busy one never adds
            # a scheduler quantum to the handoff.
            if idle_sleep:
                time.sleep(idle_sleep)
            idle_sleep = min(0.001, (idle_sleep or 0.00005) * 2)
            continue
        idle_sleep = 0.0
        t_pickup = time.perf_counter()
        job_id, n_rows, has_images, has_imu, _ = _REQ_HEADER.unpack_from(
            item.payload, 0)
        if job_id == SHUTDOWN_JOB:
            requests.release(item)
            break
        orphaned = False
        while status[STATUS_HOLD]:  # chaos lever: parked mid-flush
            if os.getppid() != parent:
                orphaned = True     # parked when the parent died hard
                break
            time.sleep(0.0005)
        if orphaned:
            break
        kwargs = {}
        if has_images:
            kwargs["images"] = _read_slab(
                item.payload, _REQ_HEADER.size, n_rows,
                geometry.img_shape, geometry.img_dtype)
        if has_imu:
            kwargs["imu"] = _read_slab(
                item.payload, imu_offset, n_rows,
                geometry.imu_shape, geometry.imu_dtype)
        # Inputs are copied out, so the request slot can go back to the
        # producer before the (slow) forward pass runs.
        requests.release(item)
        error = None
        try:
            with using_backend(backend):
                result = model.predict_degraded(**kwargs)
        except Exception as exc:  # noqa: BLE001 — report, don't die
            error, result = repr(exc), None
        t_done = time.perf_counter()
        claim = responses.claim()
        while claim is None:    # parent is behind; space frees on collect
            if os.getppid() != parent:
                orphaned = True     # a SIGKILLed parent never collects
                break
            time.sleep(0.0001)
            claim = responses.claim()
        if orphaned:
            break
        blob = _encode_meta(error, result, geometry.meta_max)
        rows = 0 if error else len(result.predictions)
        _RESP_HEADER.pack_into(
            claim.payload, 0, job_id, rows,
            0 if error else int(result.degraded), len(blob),
            t_pickup, t_done)
        meta_offset = _RESP_HEADER.size + geometry.prob_slab
        if not error:
            probs = np.ascontiguousarray(result.probabilities,
                                         dtype=geometry.prob_dtype)
            claim.payload[_RESP_HEADER.size:
                          _RESP_HEADER.size + probs.nbytes] = \
                probs.tobytes()
        claim.payload[meta_offset:meta_offset + len(blob)] = blob
        responses.publish(claim, meta_offset + len(blob))
        status[STATUS_JOBS] += 1
        status[STATUS_BUSY_NS] += int((t_done - t_pickup) * 1e9)
    requests.close()
    responses.close()
    del status
    for segment in (req_shm, resp_shm, status_shm):
        segment.close()


# -- parent-side bookkeeping -------------------------------------------------

@dataclass
class _Job:
    """One shard of one submitted batch, in flight on one worker."""

    worker: int
    job_id: int
    lo: int
    hi: int
    t_publish: float


@dataclass
class ExecutorTicket:
    """Handle for a submitted batch; redeem with ``collect``."""

    count: int
    jobs: list[_Job] = field(default_factory=list)
    #: Set when the batch ran in-process (no workers available or the
    #: batch does not fit the ring geometry) — collect returns it as-is.
    inproc: DegradedPrediction | None = None


class _WorkerHandle:
    """Parent-side state for one worker slot (survives respawns)."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.process = None
        self.req_shm = None
        self.resp_shm = None
        self.status_shm = None
        self.requests: SlotRing | None = None
        self.responses: SlotRing | None = None
        self.status: np.ndarray | None = None
        #: Responses popped ahead of their ``collect`` (the submit-side
        #: backpressure drain), keyed by job id.  Entries are decoded
        #: copies, so they stay valid across ring teardown and respawn.
        self.stash: dict[int, tuple] = {}
        self.crashes = 0
        self.next_spawn = 0.0   # monotonic instant respawn is allowed
        self.spawned_at = 0.0

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def release_resources(self) -> None:
        """Drop ring views and unlink this incarnation's segments."""
        for ring in (self.requests, self.responses):
            if ring is not None:
                ring.close()
        self.requests = self.responses = None
        self.status = None
        for segment in (self.req_shm, self.resp_shm, self.status_shm):
            if segment is None:
                continue
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:   # interpreter-teardown race
                pass
        self.req_shm = self.resp_shm = self.status_shm = None


class ParallelExecutor:
    """Shard ``predict_degraded`` batches across persistent workers.

    Args:
        model: a trained ensemble (anything with ``predict_degraded``).
            Weights reach workers exactly once, by fork-time
            copy-on-write inheritance — never through a per-flush
            pickle.
        workers: persistent worker count; 0 runs in-process (bit-exact
            with the plain path because it *is* the plain path).
        backend: inference backend name shards execute under — each
            worker pins this backend's compiled plans at spawn.
        max_rows: largest batch one ring slot must hold; rings are
            preallocated for it (a larger batch triggers a one-time
            ring rebuild).
        respawn_backoff: base seconds before a crashed worker slot may
            respawn; doubles per consecutive crash up to
            ``respawn_backoff_cap`` (the streaming health-monitor
            idiom).
        metrics: registry executor telemetry lands in (ring occupancy,
            handoff latency, shard wall-clock, crash/respawn counts);
            the process default when omitted.

    The executor presents the model's own ``predict_degraded`` surface
    so the server can treat it as a drop-in model, but the real API is
    the split pair :meth:`submit` / :meth:`collect` — the server
    submits every flushed batch before collecting any, so batches
    overlap across worker sets within a step.  Workers spawn lazily on
    the first submit (input shapes size the rings) and survive until
    :meth:`close`.
    """

    def __init__(self, model, *, workers: int = 0,
                 backend: str = "numpy-fast", max_rows: int = 128,
                 meta_max: int = 1 << 16, respawn_backoff: float = 0.05,
                 respawn_backoff_cap: float = 2.0, metrics=None) -> None:
        if workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {workers}")
        self.model = model
        self.workers = int(workers)
        self.backend = backend
        self.max_rows = int(max_rows)
        self.meta_max = int(meta_max)
        self.respawn_backoff = float(respawn_backoff)
        self.respawn_backoff_cap = float(respawn_backoff_cap)
        #: Shard intervals of the last collected batch, as
        #: ``(lo, hi, start, end)`` perf_counter tuples; empty when the
        #: batch ran in-process.  The server turns these into trace spans.
        self.last_shards: list[tuple[int, int, float, float]] = []
        registry = metrics if metrics is not None else get_registry()
        self._registry = registry
        self._shard_hist = registry.histogram(
            "serving_executor_shard_seconds",
            "Wall-clock time of one worker shard")
        self._handoff_hist = registry.histogram(
            "serving_executor_handoff_seconds",
            "Request publish-to-pickup latency through the ring",
            buckets=HANDOFF_BUCKETS)
        self._crashes = registry.counter(
            "serving_worker_crashes_total",
            "Workers declared dead (exit, kill, torn slot, or timeout)")
        self._respawns = registry.counter(
            "serving_worker_respawns_total",
            "Worker slots respawned after a crash")
        self._fallbacks = registry.counter(
            "serving_executor_inproc_fallbacks_total",
            "Batches executed in-process because no worker was available")
        self._geometry: _Geometry | None = None
        #: Merged layout awaiting a safe rebuild (set when a batch
        #: needed new slabs while tickets were in flight; applied by
        #: ``collect`` once the last outstanding ticket drains).
        self._pending_geometry: _Geometry | None = None
        self._handles = [_WorkerHandle(i) for i in range(self.workers)]
        self._job_ids = itertools.count(1)
        self._ctx = get_context("fork")
        #: Worker-backed tickets submitted but not yet collected; a
        #: geometry rebuild is refused while any exist, because tearing
        #: the rings down would strand their in-flight jobs.
        self._inflight = 0
        #: Jobs published for tickets that were aborted mid-submit
        #: (``job_id -> worker``): their responses are dropped on
        #: arrival instead of being stashed forever.
        self._abandoned: dict[int, int] = {}

    # -- geometry --------------------------------------------------------
    def _probe(self, images, imu) -> tuple[int, str]:
        """Class count and probability dtype from a 1-row forward pass."""
        with using_backend(self.backend):
            probe = self.model.predict_degraded(
                images=None if images is None else images[:1],
                imu=None if imu is None else imu[:1])
        return (int(probe.probabilities.shape[1]),
                probe.probabilities.dtype.str)

    def _build_geometry(self, images, imu, count: int) -> _Geometry:
        classes, prob_dtype = self._probe(images, imu)
        return _Geometry(
            max_rows=max(self.max_rows, count),
            img_shape=() if images is None else tuple(images.shape[1:]),
            img_dtype="" if images is None else images.dtype.str,
            imu_shape=() if imu is None else tuple(imu.shape[1:]),
            imu_dtype="" if imu is None else imu.dtype.str,
            classes=classes, prob_dtype=prob_dtype,
            meta_max=self.meta_max)

    def _ensure_geometry(self, images, imu, count: int) -> bool:
        """Size (or re-size) the ring layout for this batch's shapes.

        Returns False when the batch cannot ride the rings right now:
        either it cannot be accommodated even after a rebuild
        (shouldn't happen — defensive), or a rebuild is needed while
        earlier tickets still have jobs in flight — tearing the rings
        down would strand those jobs, so the triggering batch runs
        in-process instead and the rebuild happens on the first submit
        after the step drains.  A modality first seen after workers
        spawned (or a batch beyond ``max_rows``) forces that one-time
        rebuild: every worker is torn down and respawns lazily with
        slabs for the new stream.
        """
        current = self._geometry
        if current is not None and current.fits(images, imu, count):
            return True
        merged = self._build_geometry(images, imu, count)
        base = self._pending_geometry or current
        if base is not None:
            # Preserve slabs for streams this batch happens not to carry.
            merged = _Geometry(
                max_rows=max(base.max_rows, merged.max_rows),
                img_shape=merged.img_shape or base.img_shape,
                img_dtype=merged.img_dtype or base.img_dtype,
                imu_shape=merged.imu_shape or base.imu_shape,
                imu_dtype=merged.imu_dtype or base.imu_dtype,
                classes=merged.classes, prob_dtype=merged.prob_dtype,
                meta_max=self.meta_max)
        if current is not None and self._inflight:
            # Rebuilding now would tear the rings down under in-flight
            # tickets: remember the merged layout and apply it when the
            # last outstanding ticket collects.  This batch (and any
            # like it until then) serves in-process.
            self._pending_geometry = merged
            return False
        if current is not None:
            self._teardown_workers()
        self._pending_geometry = None
        self._geometry = merged
        return merged.fits(images, imu, count)

    # -- worker lifecycle ------------------------------------------------
    def _spawn(self, handle: _WorkerHandle) -> None:
        geometry = self._geometry
        handle.req_shm = shared_memory.SharedMemory(
            create=True, size=SlotRing.required_bytes(
                RING_SLOTS, geometry.request_payload))
        handle.resp_shm = shared_memory.SharedMemory(
            create=True, size=SlotRing.required_bytes(
                RING_SLOTS, geometry.response_payload))
        handle.status_shm = shared_memory.SharedMemory(
            create=True, size=STATUS_SLOTS * 8)
        handle.status_shm.buf[:] = bytes(STATUS_SLOTS * 8)
        handle.requests = SlotRing(
            handle.req_shm.buf, capacity=RING_SLOTS,
            slot_payload=geometry.request_payload, reset=True)
        handle.responses = SlotRing(
            handle.resp_shm.buf, capacity=RING_SLOTS,
            slot_payload=geometry.response_payload, reset=True)
        handle.status = np.ndarray((STATUS_SLOTS,), dtype=np.uint64,
                                   buffer=handle.status_shm.buf)
        handle.process = self._ctx.Process(
            target=_worker_main,
            args=(self.model, self.backend, geometry, handle.req_shm.name,
                  handle.resp_shm.name, handle.status_shm.name),
            daemon=True)
        handle.process.start()
        handle.spawned_at = time.monotonic()

    def _available_workers(self) -> list[_WorkerHandle]:
        """Live handles, respawning any whose backoff has elapsed.

        A handle found dead here without having been declared (a chaos
        kill between steps, an OOM) is declared now — silent deaths
        must enter the same backoff-respawn path as in-flight crashes.
        """
        ready = []
        for handle in self._handles:
            if handle.alive:
                ready.append(handle)
                continue
            if handle.process is not None:
                self._declare_crashed(handle)   # died since last look
                continue
            if handle.crashes == 0:
                self._spawn(handle)     # first lazy spawn
                ready.append(handle)
            elif time.monotonic() >= handle.next_spawn:
                self._spawn(handle)
                self._respawns.inc()
                ready.append(handle)
        return ready

    def _declare_crashed(self, handle: _WorkerHandle) -> None:
        """Mark a worker dead and schedule its respawn with backoff.

        Idempotent per incarnation: the second caller (a later batch in
        the same step finding the same corpse) is a no-op, so crash
        counts and backoff windows reflect actual deaths.
        """
        if handle.process is None:
            return
        self._crashes.inc()
        handle.crashes += 1
        backoff = min(self.respawn_backoff_cap,
                      self.respawn_backoff * 2 ** (handle.crashes - 1))
        handle.next_spawn = time.monotonic() + backoff
        if handle.process.is_alive():
            handle.process.terminate()  # hung, not dead: put it down
        handle.process.join(timeout=1.0)
        handle.process = None
        handle.release_resources()
        # Abandoned jobs on this worker died with it — their responses
        # will never arrive, so stop waiting to drop them.
        self._abandoned = {job_id: worker for job_id, worker
                           in self._abandoned.items()
                           if worker != handle.index}

    def _teardown_workers(self) -> None:
        # Nothing abandoned can arrive once the rings are gone.
        self._abandoned.clear()
        for handle in self._handles:
            if handle.alive:
                self._send_shutdown(handle)
            if handle.process is not None:
                handle.process.join(timeout=1.0)
                if handle.process.is_alive():
                    handle.process.terminate()
                    handle.process.join(timeout=1.0)
                handle.process = None
            handle.release_resources()

    def _send_shutdown(self, handle: _WorkerHandle) -> None:
        claim = handle.requests.claim() if handle.requests else None
        if claim is None:
            if handle.process is not None:
                handle.process.terminate()
            return
        _REQ_HEADER.pack_into(claim.payload, 0, SHUTDOWN_JOB, 0, 0, 0, 0.0)
        handle.requests.publish(claim, _REQ_HEADER.size)

    # -- chaos / inspection levers ---------------------------------------
    def kill_worker(self, index: int) -> int | None:
        """SIGKILL a live worker (chaos lever); returns its pid."""
        handle = self._handles[index]
        if not handle.alive:
            return None
        pid = handle.process.pid
        os.kill(pid, signal.SIGKILL)
        handle.process.join(timeout=2.0)
        return pid

    def hold_worker(self, index: int, hold: bool) -> None:
        """Park (or release) a worker after its next job pickup."""
        handle = self._handles[index]
        if handle.status is not None:
            handle.status[STATUS_HOLD] = 1 if hold else 0

    def worker_status(self, index: int) -> dict:
        """Liveness and status-block counters for one worker slot."""
        handle = self._handles[index]
        status = handle.status
        block = ([int(v) for v in status] if status is not None
                 else [0] * STATUS_SLOTS)
        uptime = (time.monotonic() - handle.spawned_at
                  if handle.alive else 0.0)
        return {
            "alive": handle.alive,
            "crashes": handle.crashes,
            "heartbeat": block[STATUS_HEARTBEAT],
            "plans_pinned": bool(block[STATUS_PLANS_PINNED]),
            "jobs_done": block[STATUS_JOBS],
            "busy_seconds": block[STATUS_BUSY_NS] / 1e9,
            "utilization": (block[STATUS_BUSY_NS] / 1e9 / uptime
                            if uptime > 0 else 0.0),
        }

    def wait_until_pinned(self, index: int, timeout: float = 30.0) -> bool:
        """Block until a worker's probe pass has pinned its plans."""
        deadline = time.monotonic() + timeout
        handle = self._handles[index]
        while time.monotonic() < deadline:
            if handle.status is not None and \
                    handle.status[STATUS_PLANS_PINNED]:
                return True
            if not handle.alive:
                return False
            time.sleep(0.002)
        return False

    # -- submission ------------------------------------------------------
    def submit(self, *, images: np.ndarray | None = None,
               imu: np.ndarray | None = None) -> ExecutorTicket:
        """Shard a batch across the live workers; returns a ticket.

        The write side of the async front-end: inputs land in request
        slots and the call returns without waiting for any forward
        pass.  The batch runs in-process here instead — the ticket
        carrying the finished result — when no worker is available
        (workers=0, or every slot is crashed and inside backoff), when
        the batch needs a ring rebuild while earlier tickets are still
        in flight, or when a live worker stays saturated past the
        publish deadline.
        """
        if images is not None:
            images = np.ascontiguousarray(images)
        if imu is not None:
            imu = np.ascontiguousarray(imu)
        count = len(images if images is not None else imu)
        ticket = ExecutorTicket(count=count)
        workers = []
        if self.workers > 0 and self._ensure_geometry(images, imu, count):
            workers = self._available_workers()
        if not workers:
            if self.workers > 0:
                self._fallbacks.inc()
            with using_backend(self.backend):
                ticket.inproc = self.model.predict_degraded(
                    images=images, imu=imu)
            return ticket
        shards = min(len(workers), count)
        bounds = np.linspace(0, count, shards + 1).astype(int)
        pairs = [(int(lo), int(hi))
                 for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo]
        for handle, (lo, hi) in zip(workers, pairs):
            job = self._publish_job(handle, images, imu, lo, hi)
            if job is None:     # worker died under us: abort the ticket
                self._abandon(ticket)
                self._declare_crashed(handle)
                raise WorkerCrashError(
                    f"worker {handle.index} died during submit")
            if job is _BUSY:
                # Alive but saturated past the publish deadline (a hung
                # or deeply backlogged worker): don't kill a live
                # process over backpressure — abandon the shards
                # already published and run the whole batch in-process.
                self._abandon(ticket)
                ticket.jobs = []
                self._fallbacks.inc()
                with using_backend(self.backend):
                    ticket.inproc = self.model.predict_degraded(
                        images=images, imu=imu)
                return ticket
            ticket.jobs.append(job)
        if ticket.jobs:
            self._inflight += 1
        return ticket

    def _abandon(self, ticket: ExecutorTicket) -> None:
        """Mark a ticket's published jobs as never-to-be-collected."""
        for job in ticket.jobs:
            if self._handles[job.worker].stash.pop(job.job_id, None) is None:
                self._abandoned[job.job_id] = job.worker

    def _drain_responses(self, handle: _WorkerHandle) -> bool:
        """Pop any completed responses into the handle's stash.

        Lets submit free response slots while the request ring is full:
        a worker can only pipeline ring-capacity jobs before it blocks
        publishing, so a parent that never pops mid-phase would turn a
        merely backpressured worker into a spurious crash verdict.
        Returns False when the ring is torn (the worker died
        mid-publish).
        """
        while handle.responses is not None:
            try:
                item = handle.responses.try_pop()
            except TornSlotError:
                return False
            if item is None:
                return True
            response = self._decode_response(handle, item)
            job_id = response[0]
            if self._abandoned.pop(job_id, None) is None:
                handle.stash[job_id] = response[1:]
        return True

    def _publish_job(self, handle: _WorkerHandle, images, imu,
                     lo: int, hi: int):
        """Write one shard into the worker's request ring.

        Returns the :class:`_Job` on success, ``None`` when the worker
        died (or tore a slot) under us, and :data:`_BUSY` when the ring
        stayed full past the deadline with the worker still alive.
        """
        geometry = self._geometry
        deadline = time.monotonic() + 10.0
        claim = handle.requests.claim()
        while claim is None:
            if not self._drain_responses(handle) or not handle.alive:
                return None
            if time.monotonic() > deadline:
                return _BUSY
            time.sleep(0.0001)
            claim = handle.requests.claim()
        rows = hi - lo
        offset = _REQ_HEADER.size
        if images is not None:
            chunk = np.ascontiguousarray(images[lo:hi])
            claim.payload[offset:offset + chunk.nbytes] = chunk.tobytes()
        offset += geometry.img_slab
        if imu is not None:
            chunk = np.ascontiguousarray(imu[lo:hi])
            claim.payload[offset:offset + chunk.nbytes] = chunk.tobytes()
        job_id = next(self._job_ids)
        t_publish = time.perf_counter()
        _REQ_HEADER.pack_into(claim.payload, 0, job_id, rows,
                              0 if images is None else 1,
                              0 if imu is None else 1, t_publish)
        handle.requests.publish(claim, geometry.request_payload)
        return _Job(worker=handle.index, job_id=job_id, lo=lo, hi=hi,
                    t_publish=t_publish)

    # -- collection ------------------------------------------------------
    def collect(self, ticket: ExecutorTicket,
                timeout: float = 60.0) -> DegradedPrediction:
        """Redeem a ticket: assemble the batch verdicts from all shards.

        Raises :class:`WorkerCrashError` when any shard's worker died
        (or went silent past ``timeout``) — after draining the
        surviving shards, so no stale response is left to confuse the
        next batch.  The server requeues the batch through its
        dispatch-failure path; by then the dead slot is already
        scheduled for a backoff respawn.
        """
        if ticket.inproc is not None:
            self.last_shards = []
            return ticket.inproc
        try:
            return self._collect_jobs(ticket, timeout)
        finally:
            if ticket.jobs:
                self._inflight = max(0, self._inflight - 1)
                if not self._inflight and \
                        self._pending_geometry is not None:
                    # The deferred rebuild, now that no ticket rides
                    # the rings: workers respawn lazily with the
                    # merged slabs on the next submit.
                    self._teardown_workers()
                    self._geometry = self._pending_geometry
                    self._pending_geometry = None

    def _collect_jobs(self, ticket: ExecutorTicket,
                      timeout: float) -> DegradedPrediction:
        geometry = self._geometry
        probabilities = np.empty((ticket.count, geometry.classes),
                                 dtype=geometry.prob_dtype)
        deadline = time.monotonic() + timeout
        shards: list[tuple[int, int, float, float]] = []
        crashed: list[int] = []
        errors: list[str] = []
        degraded = False
        missing: tuple[str, ...] = ()
        for position, job in enumerate(ticket.jobs):
            handle = self._handles[job.worker]
            response = self._await_response(handle, job, deadline)
            if response is None:
                self._declare_crashed(handle)
                crashed.append(job.worker)
                continue
            rows, is_degraded, meta, probs, t_pickup, t_done = response
            if "error" in meta and meta["error"]:
                errors.append(f"worker {job.worker}: {meta['error']}")
                continue
            probabilities[job.lo:job.hi] = probs
            shards.append((job.lo, job.hi, t_pickup, t_done))
            self._shard_hist.observe(t_done - t_pickup)
            self._handoff_hist.observe(max(0.0, t_pickup - job.t_publish))
            if position == 0:
                degraded = bool(is_degraded)
                missing = meta.get("missing", ())
            if meta.get("metrics"):
                self._registry.merge(meta["metrics"])
        if crashed:
            raise WorkerCrashError(
                f"worker(s) {crashed} died with batch in flight "
                f"({len(ticket.jobs)} shards, {ticket.count} rows)")
        if errors:
            raise ServingError("; ".join(errors))
        self.last_shards = sorted(shards)
        return DegradedPrediction(
            probabilities=probabilities,
            predictions=probabilities.argmax(axis=1),
            confidence=probabilities.max(axis=1),
            degraded=degraded,
            missing=missing,
        )

    def _await_response(self, handle: _WorkerHandle, job: _Job,
                        deadline: float):
        """Pop responses until ``job``'s arrives; None means crashed.

        The stash is checked first — submit's backpressure drain may
        already have popped this job's response.  Responses come back
        in per-worker FIFO order; one with a different job id belongs
        either to a ticket aborted mid-submit (dropped, via the
        abandoned set) or to a later ticket still awaiting its collect
        (stashed), so an aborted batch never poisons the next one.
        """
        stashed = handle.stash.pop(job.job_id, None)
        if stashed is not None:
            return stashed
        misses = 0
        while True:
            try:
                item = (handle.responses.try_pop()
                        if handle.responses is not None else None)
            except TornSlotError:
                return None     # died mid-publish
            if item is None:
                if not handle.alive:
                    misses += 1
                    if misses > 3:  # final drains: none in flight
                        return None
                elif time.monotonic() > deadline:
                    return None
                else:
                    time.sleep(0.00005)
                continue
            misses = 0
            response = self._decode_response(handle, item)
            job_id = response[0]
            if job_id == job.job_id:
                return response[1:]
            if self._abandoned.pop(job_id, None) is None:
                handle.stash[job_id] = response[1:]

    def _decode_response(self, handle: _WorkerHandle, item):
        """Copy one popped response slot out and release it.

        Returns ``(job_id, rows, degraded, meta, probs, t_pickup,
        t_done)`` with the probabilities copied, so the tuple stays
        valid after the slot returns to the worker (or the ring is torn
        down by a later rebuild).
        """
        geometry = self._geometry
        (job_id, rows, is_degraded, meta_len, t_pickup,
         t_done) = _RESP_HEADER.unpack_from(item.payload, 0)
        probs = None
        if rows:
            probs = np.frombuffer(
                item.payload, dtype=np.dtype(geometry.prob_dtype),
                count=rows * geometry.classes,
                offset=_RESP_HEADER.size
            ).reshape(rows, geometry.classes).copy()
        meta_offset = _RESP_HEADER.size + geometry.prob_slab
        meta = pickle.loads(
            bytes(item.payload[meta_offset:meta_offset + meta_len]))
        handle.responses.release(item)
        return job_id, rows, is_degraded, meta, probs, t_pickup, t_done

    # -- facade + telemetry ----------------------------------------------
    def predict_degraded(self, *, images: np.ndarray | None = None,
                         imu: np.ndarray | None = None
                         ) -> DegradedPrediction:
        """Model-compatible synchronous verdict batch (submit + collect)."""
        return self.collect(self.submit(images=images, imu=imu))

    def ring_occupancy(self) -> dict[int, tuple[int, int]]:
        """Per-worker ``(request, response)`` ring occupancy, and gauges."""
        occupancy = {}
        for handle in self._handles:
            if handle.requests is None:
                continue
            req, resp = handle.requests.occupancy, \
                handle.responses.occupancy
            occupancy[handle.index] = (req, resp)
            label = str(handle.index)
            self._registry.gauge(
                "serving_ring_occupancy",
                "Published-but-unreleased request slots",
                worker=label, ring="request").set(req)
            self._registry.gauge(
                "serving_ring_occupancy",
                "Published-but-unreleased response slots",
                worker=label, ring="response").set(resp)
            self._registry.gauge(
                "serving_worker_utilization",
                "Busy fraction of a worker's lifetime",
                worker=label).set(
                    self.worker_status(handle.index)["utilization"])
        return occupancy

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Shut every worker down and release the shared segments."""
        self._teardown_workers()

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def default_worker_count() -> int:
    """A sensible ``--workers`` default for this machine (0 on 1 core)."""
    return max(0, (os.cpu_count() or 1) - 1)
