"""Multi-tenant inference serving for the trained DarNet ensemble.

Turns whole-dataset ``predict()`` calls into a continuously running
service: per-driver sessions absorb raw IMU readings and frames, a
micro-batching scheduler coalesces many sessions' verdict requests into
single vectorized forward passes, a model registry routes each session to
the variant matching its privacy level (with lazy loading and hot swap),
and admission control keeps the whole thing bounded under overload.
"""

from repro.exceptions import ServingError
from repro.serving.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionStats,
)
from repro.serving.executor import ParallelExecutor, default_worker_count
from repro.serving.registry import ModelRecord, ServingModelRegistry
from repro.serving.replay import (
    DriverTrace,
    ReplayReport,
    replay_concurrent_drives,
    synthesize_trace,
)
from repro.serving.scheduler import (
    MODALITY_BOTH,
    MODALITY_FRAMES,
    MODALITY_IMU,
    InferenceRequest,
    MicroBatch,
    MicroBatchScheduler,
    SchedulerStats,
)
from repro.serving.server import InferenceServer, ServerStats, ServingVerdict
from repro.serving.sessions import (
    ALERT_ADJACENT_BOOST,
    DEGRADED_BOOST,
    IMU_FEATURES,
    DriverSession,
    SessionCounters,
    StreamState,
)

__all__ = [
    "ServingError",
    "DriverSession", "SessionCounters", "StreamState", "IMU_FEATURES",
    "ALERT_ADJACENT_BOOST", "DEGRADED_BOOST",
    "InferenceRequest", "MicroBatch", "MicroBatchScheduler",
    "SchedulerStats", "MODALITY_BOTH", "MODALITY_IMU", "MODALITY_FRAMES",
    "ServingModelRegistry", "ModelRecord",
    "AdmissionController", "AdmissionDecision", "AdmissionStats",
    "InferenceServer", "ServerStats", "ServingVerdict",
    "ParallelExecutor", "default_worker_count",
    "ReplayReport", "DriverTrace", "replay_concurrent_drives",
    "synthesize_trace",
]
