"""Multi-tenant inference serving for the trained DarNet ensemble.

Turns whole-dataset ``predict()`` calls into a continuously running
service: per-driver sessions absorb raw IMU readings and frames, a
micro-batching scheduler coalesces many sessions' verdict requests into
single vectorized forward passes, a model registry routes each session to
the variant matching its privacy level (with lazy loading and hot swap),
and admission control keeps the whole thing bounded under overload.

The resilience layer makes the tier survive its own infrastructure: a
shard supervisor runs N servers behind a consistent-hash router with
heartbeat watchdogs, exponential-backoff restarts and checkpoint-based
session migration; a durable verdict journal (append-only, CRC-framed,
fsync-batched) plus a store-and-forward sink guarantee every admitted
(driver, window) is delivered exactly once or journaled as deferred; and
a serving chaos harness proves all of it under scripted shard kills,
executor hangs, sink blackholes and full disks.
"""

from repro.exceptions import (
    JournalError,
    RingError,
    ServingError,
    ShardTimeoutError,
    ShardUnavailableError,
    TornSlotError,
    WorkerCrashError,
)
from repro.serving.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionStats,
)
from repro.serving.chaos import (
    ServingChaosHarness,
    ServingChaosReport,
    run_serving_chaos,
    standard_serving_schedule,
)
from repro.serving.checkpoint import (
    CheckpointStore,
    SessionCheckpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.serving.executor import (
    ExecutorTicket,
    ParallelExecutor,
    default_worker_count,
)
from repro.serving.journal import (
    JournalReplay,
    StoreAndForwardSink,
    VerdictJournal,
    VerdictRecord,
    replay_journal,
)
from repro.serving.registry import ModelRecord, ServingModelRegistry
from repro.serving.ring import ClaimedSlot, PoppedSlot, SlotRing
from repro.serving.replay import (
    DriverTrace,
    ReplayReport,
    replay_concurrent_drives,
    synthesize_trace,
)
from repro.serving.scheduler import (
    MODALITY_BOTH,
    MODALITY_FRAMES,
    MODALITY_IMU,
    InferenceRequest,
    MicroBatch,
    MicroBatchScheduler,
    SchedulerStats,
)
from repro.serving.server import InferenceServer, ServerStats, ServingVerdict
from repro.serving.sessions import (
    ALERT_ADJACENT_BOOST,
    DEGRADED_BOOST,
    IMU_FEATURES,
    DriverSession,
    SessionCounters,
    StreamState,
)
from repro.serving.supervisor import (
    HashRing,
    MigrationEvent,
    ShardHandle,
    ShardSupervisor,
)

__all__ = [
    "ServingError", "ShardUnavailableError", "ShardTimeoutError",
    "JournalError", "RingError", "TornSlotError", "WorkerCrashError",
    "DriverSession", "SessionCounters", "StreamState", "IMU_FEATURES",
    "ALERT_ADJACENT_BOOST", "DEGRADED_BOOST",
    "InferenceRequest", "MicroBatch", "MicroBatchScheduler",
    "SchedulerStats", "MODALITY_BOTH", "MODALITY_IMU", "MODALITY_FRAMES",
    "ServingModelRegistry", "ModelRecord",
    "AdmissionController", "AdmissionDecision", "AdmissionStats",
    "InferenceServer", "ServerStats", "ServingVerdict",
    "ParallelExecutor", "ExecutorTicket", "default_worker_count",
    "SlotRing", "ClaimedSlot", "PoppedSlot",
    "ReplayReport", "DriverTrace", "replay_concurrent_drives",
    "synthesize_trace",
    "VerdictJournal", "VerdictRecord", "JournalReplay", "replay_journal",
    "StoreAndForwardSink",
    "SessionCheckpoint", "CheckpointStore", "save_checkpoint",
    "load_checkpoint",
    "ShardSupervisor", "ShardHandle", "HashRing", "MigrationEvent",
    "ServingChaosHarness", "ServingChaosReport", "run_serving_chaos",
    "standard_serving_schedule",
]
