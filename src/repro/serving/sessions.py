"""Per-driver serving sessions.

The paper's deployment is continuous per-driver classification through a
centralized controller (§3, Fig. 1): the phone streams raw IMU tuples and
the dashcam streams frames, and the *server* is responsible for cutting
the trailing 4 Hz x 5 s window at each instant.  A :class:`DriverSession`
is that server-side state: callers submit raw readings as they arrive,
and the session maintains the ring buffer and latest frame so a verdict
can be requested at any instant without the caller pre-cutting windows.

Sessions also carry the scheduling signals the micro-batcher uses:

* *alert adjacency* — a driver whose last verdict was a distraction class
  is the driver the system exists for; their requests jump the queue and
  are shed last;
* *degradation* — a driver with a dead stream is already running on
  marginalized posteriors; dropping their remaining modality too would
  silence them entirely.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.datasets.classes import DrivingBehavior
from repro.datasets.imu_synth import DEFAULT_WINDOW_STEPS
from repro.exceptions import ConfigurationError

#: Width of one IMU grid sample (4 sensors x 3 axes, paper §4.1).
IMU_FEATURES = 12

#: Priority boosts, added to a session's base priority.
ALERT_ADJACENT_BOOST = 2.0
DEGRADED_BOOST = 1.0


class StreamState(enum.Enum):
    """Liveness of one sensor stream feeding a session."""

    LIVE = "live"      # fresh data within the staleness window
    STALE = "stale"    # data exists but has aged out
    DEAD = "dead"      # never delivered anything


@dataclass
class SessionCounters:
    """Per-session serving counters."""

    imu_samples: int = 0
    frames: int = 0
    requests: int = 0
    verdicts: int = 0
    degraded_verdicts: int = 0


@dataclass
class DriverSession:
    """Server-side state for one driver's continuous classification.

    Args:
        session_id: unique id within the server.
        driver_id: the driver this session serves.
        privacy: the session's distortion level value (``None`` /
            ``"low"`` / ``"medium"`` / ``"high"``) — routes it to the
            matching model variant in the registry.
        window_steps: IMU window length (paper: 20 steps = 4 Hz x 5 s).
        imu_stale_after: seconds of IMU silence before the stream is STALE.
        frame_stale_after: seconds of frame silence before it is STALE.
        base_priority: scheduling priority floor for this session.
    """

    session_id: str
    driver_id: int
    privacy: str | None = None
    window_steps: int = DEFAULT_WINDOW_STEPS
    imu_stale_after: float = 2.0
    frame_stale_after: float = 1.0
    base_priority: float = 0.0
    counters: SessionCounters = field(default_factory=SessionCounters)

    def __post_init__(self) -> None:
        if self.window_steps < 1:
            raise ConfigurationError("window_steps must be >= 1")
        self._buffer = np.zeros((self.window_steps, IMU_FEATURES),
                                dtype=np.float64)
        self._filled = 0
        self._head = 0  # next write position
        self._latest_frame: np.ndarray | None = None
        self._last_imu_at: float | None = None
        self._last_frame_at: float | None = None
        self._last_predicted: int | None = None
        self._last_degraded = False
        self._sequence = 0

    # -- ingest ----------------------------------------------------------
    def ingest_imu(self, timestamp: float, values: np.ndarray) -> None:
        """Append one grid-aligned 12-feature IMU sample."""
        values = np.asarray(values, dtype=np.float64).reshape(-1)
        if values.shape != (IMU_FEATURES,):
            raise ConfigurationError(
                f"IMU sample must have {IMU_FEATURES} features, "
                f"got shape {values.shape}")
        self._buffer[self._head] = values
        self._head = (self._head + 1) % self.window_steps
        self._filled = min(self._filled + 1, self.window_steps)
        self._last_imu_at = float(timestamp)
        self.counters.imu_samples += 1

    def ingest_frame(self, timestamp: float, image: np.ndarray) -> None:
        """Replace the latest camera frame (HW or CHW)."""
        image = np.asarray(image, dtype=np.float32)
        if image.ndim == 2:
            image = image[None]
        if image.ndim != 3:
            raise ConfigurationError(
                f"frame must be HW or CHW, got shape {image.shape}")
        self._latest_frame = image
        self._last_frame_at = float(timestamp)
        self.counters.frames += 1

    # -- snapshots -------------------------------------------------------
    def window(self) -> np.ndarray | None:
        """The trailing IMU window in chronological order.

        Until the ring fills, the oldest available sample is repeated to
        pad the front (bootstrap), so verdicts can flow from the first
        instant of a drive; returns ``None`` before any sample arrives.
        """
        if self._filled == 0:
            return None
        if self._filled == self.window_steps:
            return np.roll(self._buffer, -self._head, axis=0).copy()
        recent = self._buffer[:self._filled]
        pad = np.repeat(recent[:1], self.window_steps - self._filled, axis=0)
        return np.concatenate([pad, recent], axis=0)

    def latest_frame(self) -> np.ndarray | None:
        """The most recent frame (CHW), or ``None``."""
        return self._latest_frame

    # -- liveness --------------------------------------------------------
    def _state(self, last_at: float | None, stale_after: float,
               now: float) -> StreamState:
        if last_at is None:
            return StreamState.DEAD
        if now - last_at > stale_after:
            return StreamState.STALE
        return StreamState.LIVE

    def imu_state(self, now: float) -> StreamState:
        """Liveness of the IMU stream at ``now``."""
        return self._state(self._last_imu_at, self.imu_stale_after, now)

    def frame_state(self, now: float) -> StreamState:
        """Liveness of the camera stream at ``now``."""
        return self._state(self._last_frame_at, self.frame_stale_after, now)

    # -- checkpoint / restore --------------------------------------------
    def export_state(self) -> dict:
        """A self-contained snapshot of the session's full state.

        Everything the serving tier needs to resume this driver mid-drive
        on another shard: the raw ring buffer (with write head and fill
        level, so restore is bit-exact rather than re-derived through
        :meth:`window`), the latest frame, stream timestamps, scheduling
        signals, the request sequence, and the counters.  Arrays are
        copied — the snapshot stays crash-consistent even if the live
        session keeps ingesting.
        """
        return {
            "session_id": self.session_id,
            "driver_id": self.driver_id,
            "privacy": self.privacy,
            "window_steps": self.window_steps,
            "imu_stale_after": self.imu_stale_after,
            "frame_stale_after": self.frame_stale_after,
            "base_priority": self.base_priority,
            "buffer": self._buffer.copy(),
            "filled": self._filled,
            "head": self._head,
            "latest_frame": (None if self._latest_frame is None
                             else self._latest_frame.copy()),
            "last_imu_at": self._last_imu_at,
            "last_frame_at": self._last_frame_at,
            "last_predicted": self._last_predicted,
            "last_degraded": self._last_degraded,
            "sequence": self._sequence,
            "counters": {
                "imu_samples": self.counters.imu_samples,
                "frames": self.counters.frames,
                "requests": self.counters.requests,
                "verdicts": self.counters.verdicts,
                "degraded_verdicts": self.counters.degraded_verdicts,
            },
        }

    @classmethod
    def from_state(cls, state: dict) -> "DriverSession":
        """Rebuild a session from :meth:`export_state` output, bit-exact.

        The restored ring buffer, head and fill level equal the
        snapshot's exactly, so ``restored.window()`` returns the same
        float64 values the source session would have returned at
        checkpoint time.
        """
        session = cls(
            session_id=state["session_id"],
            driver_id=int(state["driver_id"]),
            privacy=state["privacy"],
            window_steps=int(state["window_steps"]),
            imu_stale_after=float(state["imu_stale_after"]),
            frame_stale_after=float(state["frame_stale_after"]),
            base_priority=float(state["base_priority"]),
        )
        buffer = np.asarray(state["buffer"], dtype=np.float64)
        if buffer.shape != session._buffer.shape:
            raise ConfigurationError(
                f"checkpoint buffer shape {buffer.shape} does not match "
                f"window_steps {session.window_steps}")
        session._buffer = buffer.copy()
        session._filled = int(state["filled"])
        session._head = int(state["head"])
        frame = state["latest_frame"]
        session._latest_frame = (None if frame is None
                                 else np.asarray(frame, dtype=np.float32))
        session._last_imu_at = state["last_imu_at"]
        session._last_frame_at = state["last_frame_at"]
        session._last_predicted = state["last_predicted"]
        session._last_degraded = bool(state["last_degraded"])
        session._sequence = int(state["sequence"])
        counters = state.get("counters", {})
        session.counters = SessionCounters(
            imu_samples=int(counters.get("imu_samples", 0)),
            frames=int(counters.get("frames", 0)),
            requests=int(counters.get("requests", 0)),
            verdicts=int(counters.get("verdicts", 0)),
            degraded_verdicts=int(counters.get("degraded_verdicts", 0)),
        )
        return session

    # -- scheduling signals ----------------------------------------------
    @property
    def alert_adjacent(self) -> bool:
        """Whether the last verdict was a distraction class."""
        return (self._last_predicted is not None
                and self._last_predicted != int(DrivingBehavior.NORMAL))

    @property
    def degraded(self) -> bool:
        """Whether the last verdict ran on a marginalized posterior."""
        return self._last_degraded

    def priority(self, now: float) -> float:
        """Scheduling priority (higher = flushed first, shed last)."""
        del now  # signature kept time-aware for future aging policies
        value = self.base_priority
        if self.alert_adjacent:
            value += ALERT_ADJACENT_BOOST
        if self._last_degraded:
            value += DEGRADED_BOOST
        return value

    def next_sequence(self) -> int:
        """Monotonic per-session request sequence number."""
        self._sequence += 1
        self.counters.requests += 1
        return self._sequence

    def record_verdict(self, predicted: int, degraded: bool) -> None:
        """Feed a delivered verdict back into the scheduling signals."""
        self._last_predicted = int(predicted)
        self._last_degraded = bool(degraded)
        self.counters.verdicts += 1
        if degraded:
            self.counters.degraded_verdicts += 1
