"""Durable verdict journal: an append-only, fsync-batched write-ahead log.

The serving tier's promise is that an admitted verdict request is never
*silently* lost — not when a shard dies, not when the downstream alert
sink is unreachable, not when the serving process itself is SIGKILLed.
The journal is the durability half of that promise:

* every delivered verdict (and every *deferred* request the degradation
  ladder could not answer immediately) is appended as a length-prefixed,
  CRC-framed record before it counts as handled;
* ``fsync`` is batched (every ``fsync_every`` records) so durability
  costs one disk barrier per batch, not per verdict;
* :func:`replay_journal` reads a journal back after a crash, *verifying
  every frame*: a torn tail (the record a SIGKILL interrupted) is
  detected by its CRC/length and dropped rather than parsed into
  garbage, and duplicate appends — a retried dispatch journals twice —
  are deduplicated by ``(session_id, sequence)``, the (driver, window)
  identity of a verdict;
* when the disk itself fails (ENOSPC chaos), appends degrade to an
  in-memory overflow buffer that drains back to disk on recovery, so a
  full disk weakens durability without dropping records.

:class:`StoreAndForwardSink` builds the delivery half on top: verdicts
are journaled first, then forwarded to the downstream sink; when the
sink is unreachable they accumulate as journal-backed pending work and
drain in order on reconnect, deduplicated so a reconnect never
double-alerts.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError, JournalError
from repro.obs.metrics import MetricsRegistry, get_registry

#: Frame layout: magic(2) | payload_length:u32 LE | crc32(payload):u32 LE.
MAGIC = b"VJ"
_HEADER = struct.Struct("<2sII")

#: Record kinds the journal carries.
KIND_VERDICT = "verdict"
KIND_DEFERRED = "deferred"


@dataclass(frozen=True)
class VerdictRecord:
    """One journaled serving outcome for a (driver, window) id.

    ``kind`` is ``"verdict"`` for a delivered classification and
    ``"deferred"`` for a window the degradation ladder journaled instead
    of answering (no live shard could serve it before its deadline); a
    deferred record keeps the window accounted for — durable, replayable,
    never silently dropped.
    """

    session_id: str
    sequence: int
    timestamp: float
    kind: str = KIND_VERDICT
    predicted: int = -1
    confidence: float = 0.0
    degraded: bool = False
    model_key: str = ""
    reason: str = ""

    @property
    def record_id(self) -> tuple[str, int]:
        """The (driver, window) identity deduplication keys on."""
        return (self.session_id, self.sequence)

    def to_payload(self) -> bytes:
        """The canonical JSON wire form (sorted keys, compact)."""
        return json.dumps({
            "session_id": self.session_id, "sequence": self.sequence,
            "timestamp": self.timestamp, "kind": self.kind,
            "predicted": self.predicted, "confidence": self.confidence,
            "degraded": self.degraded, "model_key": self.model_key,
            "reason": self.reason,
        }, sort_keys=True, separators=(",", ":")).encode("utf-8")

    @classmethod
    def from_payload(cls, payload: bytes) -> "VerdictRecord":
        data = json.loads(payload.decode("utf-8"))
        return cls(session_id=data["session_id"],
                   sequence=int(data["sequence"]),
                   timestamp=float(data["timestamp"]),
                   kind=data.get("kind", KIND_VERDICT),
                   predicted=int(data.get("predicted", -1)),
                   confidence=float(data.get("confidence", 0.0)),
                   degraded=bool(data.get("degraded", False)),
                   model_key=data.get("model_key", ""),
                   reason=data.get("reason", ""))


def frame_record(record: VerdictRecord) -> bytes:
    """One on-disk frame: header + payload, CRC over the payload."""
    payload = record.to_payload()
    return _HEADER.pack(MAGIC, len(payload),
                        zlib.crc32(payload) & 0xFFFFFFFF) + payload


@dataclass
class JournalReplay:
    """What :func:`replay_journal` recovered from a journal file."""

    records: list[VerdictRecord] = field(default_factory=list)
    duplicates: int = 0
    torn: int = 0
    bytes_read: int = 0

    @property
    def ids(self) -> set[tuple[str, int]]:
        """The deduplicated (driver, window) ids recovered."""
        return {record.record_id for record in self.records}


def replay_journal(path: str) -> JournalReplay:
    """Crash-safe replay: parse every intact frame, dedup, drop the torn tail.

    A record is accepted only when its magic, length and CRC all verify;
    the first frame that fails (a partial write from a crash mid-append)
    ends the replay and is counted in ``torn`` — a torn record is never
    surfaced as data.  Duplicate (driver, window) ids keep their first
    occurrence (append order is delivery order; later appends are
    retries of the same window).
    """
    replay = JournalReplay()
    if not os.path.exists(path):
        return replay
    with open(path, "rb") as handle:
        blob = handle.read()
    seen: set[tuple[str, int]] = set()
    offset = 0
    while offset < len(blob):
        header = blob[offset:offset + _HEADER.size]
        if len(header) < _HEADER.size:
            replay.torn += 1
            break
        magic, length, crc = _HEADER.unpack(header)
        payload = blob[offset + _HEADER.size:offset + _HEADER.size + length]
        if (magic != MAGIC or len(payload) < length
                or zlib.crc32(payload) & 0xFFFFFFFF != crc):
            replay.torn += 1
            break
        try:
            record = VerdictRecord.from_payload(payload)
        except (ValueError, KeyError):
            replay.torn += 1
            break
        offset += _HEADER.size + length
        replay.bytes_read = offset
        if record.record_id in seen:
            replay.duplicates += 1
            continue
        seen.add(record.record_id)
        replay.records.append(record)
    return replay


class VerdictJournal:
    """Append-only verdict WAL with batched fsync and ENOSPC degradation.

    Args:
        path: journal file (created/appended; parent directory must
            exist).
        fsync_every: records between disk barriers.  A crash loses at
            most the unsynced tail *of the file buffer*; records framed
            but unsynced are still usually recovered (the OS flushed
            them), and a torn final frame is detected on replay.
        registry: metrics registry for the journal gauges
            (``serving_journal_disk_bytes``, depth, appends, overflow);
            the process default when omitted.
    """

    def __init__(self, path: str, *, fsync_every: int = 8,
                 registry: MetricsRegistry | None = None) -> None:
        if fsync_every < 1:
            raise ConfigurationError("fsync_every must be >= 1")
        self.path = str(path)
        self.fsync_every = int(fsync_every)
        try:
            self._handle = open(self.path, "ab")
        except OSError as error:
            raise JournalError(f"cannot open journal {path!r}: {error}") \
                from error
        self._since_sync = 0
        self._disk_full = False
        self._overflow: list[VerdictRecord] = []
        self._unsynced: list[VerdictRecord] = []
        self.appended = 0
        self.synced = 0
        self.overflowed = 0
        registry = registry or get_registry()
        self._obs_bytes = registry.gauge(
            "serving_journal_disk_bytes",
            "Bytes of verdict journal currently on disk")
        self._obs_depth = registry.gauge(
            "serving_journal_depth",
            "Journaled records not yet delivered downstream")
        self._obs_appends = registry.counter(
            "serving_journal_appends_total",
            "Records appended to the verdict journal")
        self._obs_overflow = registry.counter(
            "serving_journal_overflow_total",
            "Records buffered in memory because the journal disk was full")
        self._obs_bytes.set(self.size_bytes)

    # -- fault injection -------------------------------------------------
    def simulate_disk_full(self, full: bool) -> None:
        """Chaos hook: make appends fail as if the disk had no space."""
        self._disk_full = bool(full)
        if not self._disk_full:
            self._drain_overflow()

    @property
    def disk_full(self) -> bool:
        return self._disk_full

    @property
    def overflow_depth(self) -> int:
        """Records currently parked in memory waiting for disk space."""
        return len(self._overflow)

    # -- appending -------------------------------------------------------
    def append(self, record: VerdictRecord) -> bool:
        """Durably queue one record; returns True if it reached disk.

        With a full (or failing) disk the record is kept in the memory
        overflow buffer instead — weaker durability, zero loss within
        the process — and drains to disk in order once space returns.
        """
        self.appended += 1
        self._obs_appends.inc()
        if self._disk_full:
            self._overflow.append(record)
            self.overflowed += 1
            self._obs_overflow.inc()
            return False
        self._drain_overflow()
        if self._disk_full:
            # The drain itself tripped disk-full; the new record must
            # queue behind the still-parked older records, never jump
            # them onto disk.
            self._overflow.append(record)
            self.overflowed += 1
            self._obs_overflow.inc()
            return False
        if not self._write(record):
            self._overflow.append(record)
            self.overflowed += 1
            self._obs_overflow.inc()
            return False
        self._since_sync += 1
        if self._since_sync >= self.fsync_every:
            self.sync()
        return True

    def _write(self, record: VerdictRecord) -> bool:
        try:
            self._handle.write(frame_record(record))
        except OSError:
            self._disk_full = True
            return False
        self._unsynced.append(record)
        self._obs_bytes.set(self.size_bytes)
        return True

    def _drain_overflow(self) -> None:
        while self._overflow and not self._disk_full:
            if not self._write(self._overflow[0]):
                return
            self._overflow.pop(0)
            self._since_sync += 1
        if self._since_sync >= self.fsync_every:
            self.sync()

    def sync(self) -> None:
        """Flush buffered frames and issue the disk barrier.

        On a flush/fsync failure the records append() acknowledged but
        the barrier never covered move back to the overflow buffer —
        ahead of anything newer — so a later drain rewrites them instead
        of trusting a userspace buffer the kernel may have dropped.  If
        the original bytes did land, replay dedups the rewrite by
        (driver, window) id.
        """
        if self._handle.closed:
            return
        try:
            self._handle.flush()
            os.fsync(self._handle.fileno())
        except OSError:
            self._disk_full = True
            if self._unsynced:
                self._overflow[:0] = self._unsynced
                self.overflowed += len(self._unsynced)
                self._obs_overflow.inc(len(self._unsynced))
                self._unsynced.clear()
            self._since_sync = 0
            return
        self._unsynced.clear()
        self.synced = self.appended - len(self._overflow)
        self._since_sync = 0

    # -- inspection ------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        """Bytes written to the journal file so far (buffered included)."""
        if self._handle.closed:
            try:
                return os.path.getsize(self.path)
            except OSError:
                return 0
        return self._handle.tell()

    def set_depth(self, depth: int) -> None:
        """Publish the undelivered-record depth (set by the owning sink)."""
        self._obs_depth.set(depth)

    def replay(self) -> JournalReplay:
        """Re-read this journal from disk (syncs buffered frames first)."""
        self.sync()
        return replay_journal(self.path)

    def close(self) -> None:
        if not self._handle.closed:
            self.sync()
            self._handle.close()


class StoreAndForwardSink:
    """Journal-backed delivery to a downstream verdict consumer.

    Every offered record is journaled *before* a delivery attempt, then
    forwarded in order.  When the downstream raises (or the sink is
    blackholed by chaos) records accumulate as pending work; ``pump``
    retries on every supervisor step and drains the backlog in order on
    reconnect.  Delivery is deduplicated by (driver, window) id, so a
    window retried through both a failed shard and its adoptee reaches
    the downstream exactly once.

    Args:
        journal: the durable WAL backing the pending queue.
        downstream: callable taking one :class:`VerdictRecord`; raising
            marks the sink unreachable until the next pump.  ``None``
            collects records internally (``delivered`` list).
    """

    def __init__(self, journal: VerdictJournal,
                 downstream=None, *,
                 registry: MetricsRegistry | None = None) -> None:
        self.journal = journal
        self.downstream = downstream
        self.blackholed = False
        self.delivered: list[VerdictRecord] = []
        self._pending: list[VerdictRecord] = []
        self._delivered_ids: set[tuple[str, int]] = set()
        self.duplicates_suppressed = 0
        self.delivery_failures = 0
        registry = registry or get_registry()
        self._obs_delivered = registry.counter(
            "serving_sink_delivered_total",
            "Verdict records delivered to the downstream sink")
        self._obs_failures = registry.counter(
            "serving_sink_failures_total",
            "Delivery attempts the downstream sink refused")

    @property
    def pending(self) -> int:
        """Records journaled but not yet delivered downstream."""
        return len(self._pending)

    def offer(self, record: VerdictRecord) -> None:
        """Journal a record and queue it for downstream delivery."""
        if record.record_id in self._delivered_ids:
            self.duplicates_suppressed += 1
            return
        self.journal.append(record)
        if any(p.record_id == record.record_id for p in self._pending):
            self.duplicates_suppressed += 1
            return
        self._pending.append(record)
        self.journal.set_depth(len(self._pending))

    def pump(self, now: float) -> int:
        """Attempt delivery of everything pending; returns records sent."""
        del now  # deliveries are attempted every pump; no wall timers
        sent = 0
        while self._pending:
            record = self._pending[0]
            if record.record_id in self._delivered_ids:
                self._pending.pop(0)
                self.duplicates_suppressed += 1
                continue
            if not self._deliver(record):
                break
            self._pending.pop(0)
            self._delivered_ids.add(record.record_id)
            self.delivered.append(record)
            self._obs_delivered.inc()
            sent += 1
        self.journal.set_depth(len(self._pending))
        return sent

    def _deliver(self, record: VerdictRecord) -> bool:
        if self.blackholed:
            self.delivery_failures += 1
            self._obs_failures.inc()
            return False
        if self.downstream is None:
            return True
        try:
            self.downstream(record)
        except Exception:  # noqa: BLE001 — the sink is a fault barrier
            self.delivery_failures += 1
            self._obs_failures.inc()
            return False
        return True
