"""Serving-tier chaos: scripted shard/sink/disk faults with a loss audit.

The streaming chaos harness (:mod:`repro.streaming.faults`) proves the
collection stack degrades instead of dying; this module proves the same
for the *serving* stack.  It drives a :class:`~.supervisor.ShardSupervisor`
through a scripted :class:`~repro.streaming.faults.FaultSchedule` carrying
the serving fault kinds:

* ``shard_kill`` — the target shard crashes (calls refuse, heartbeats
  stop); the watchdog must notice, migrate its sessions and restart it;
* ``executor_hang`` — the target shard accepts nothing and answers
  nothing (calls time out); indistinguishable from a crash from outside,
  and handled the same way;
* ``sink_blackhole`` — the downstream verdict consumer is unreachable;
  store-and-forward must buffer and drain on reconnect without
  double-delivering;
* ``journal_disk_full`` — the journal's disk refuses writes; appends
  must degrade to the in-memory overflow and drain back afterwards;
* ``worker_kill`` — a persistent executor worker process takes a real
  SIGKILL; in-flight requests must requeue exactly once through the
  dispatch-failure path and the slot must respawn with backoff.

:func:`run_serving_chaos` replays scripted drives through the supervised
fleet under such a schedule and audits the one invariant everything else
serves: **every admitted (driver, window) id is accounted for** — it
reaches the downstream sink exactly once as a verdict, or it is
journaled as deferred.  Zero silent loss, no duplicates, no torn journal
frames, bounded recovery time.  Violations are collected (not raised) so
the CLI can print the audit and exit non-zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.darnet import DriveScript
from repro.exceptions import ConfigurationError
from repro.scenarios.compiler import compile_scenario
from repro.scenarios.faults import scenario_fault_events
from repro.scenarios.spec import ScenarioSpec
from repro.serving.supervisor import SHARD_UP, ShardSupervisor
from repro.streaming.faults import FaultEvent, FaultSchedule


class ServingChaosHarness:
    """Reconciles a supervised shard fleet with a fault schedule.

    ``shard_kill`` is edge-triggered — a shard that restarts while the
    event is still live is killed again, which is exactly the crash-loop
    the restart backoff exists for.  ``executor_hang``,
    ``sink_blackhole`` and ``journal_disk_full`` are level-triggered:
    asserted while the event is active, cleared when it ends.
    ``worker_kill`` is edge-triggered per event: the first live worker
    process of the target shard's executors takes a real SIGKILL once
    per scheduled window (retried across steps until an executor has
    actually spawned workers to kill — lazily spawned fleets must not
    let the fault fizzle).
    """

    def __init__(self, schedule: FaultSchedule,
                 supervisor: ShardSupervisor) -> None:
        self.schedule = schedule
        self.supervisor = supervisor
        self.log: list[tuple[float, str, str, str]] = []
        self.kills = 0
        self.hangs = 0
        self.worker_kills = 0
        self._worker_killed: set = set()

    def _apply_worker_kill(self, name: str, handle, now: float) -> None:
        event = self.schedule.active_for("worker_kill", name, now)
        if event is None or event in self._worker_killed:
            return
        server = handle.server
        if server is None or handle.state != SHARD_UP:
            return
        for executor in getattr(server, "_executors", {}).values():
            for index in range(executor.workers):
                if executor.kill_worker(index) is not None:
                    self.worker_kills += 1
                    self._worker_killed.add(event)
                    self.log.append((now, "worker_kill", name, "on"))
                    return

    def apply(self, now: float) -> None:
        """Reconcile fleet state with the schedule at virtual ``now``."""
        for name in self.supervisor.shard_names:
            handle = self.supervisor.shard(name)
            kill = self.schedule.active_for("shard_kill", name, now)
            if kill is not None and handle.state == SHARD_UP \
                    and not handle.crashed:
                handle.crashed = True
                self.kills += 1
                self.log.append((now, "shard_kill", name, "on"))
            hang = self.schedule.active_for("executor_hang", name, now)
            should_hang = hang is not None and handle.state == SHARD_UP \
                and not handle.crashed
            if should_hang and not handle.hung:
                self.hangs += 1
                self.log.append((now, "executor_hang", name, "on"))
            elif handle.hung and not should_hang:
                self.log.append((now, "executor_hang", name, "off"))
            if handle.state == SHARD_UP:
                handle.hung = should_hang
            self._apply_worker_kill(name, handle, now)
        sink = self.supervisor.sink
        blackhole = self.schedule.active_for("sink_blackhole", "*", now)
        if (blackhole is not None) != sink.blackholed:
            sink.blackholed = blackhole is not None
            self.log.append((now, "sink_blackhole", "*",
                             "on" if sink.blackholed else "off"))
        journal = self.supervisor.journal
        disk_full = self.schedule.active_for("journal_disk_full", "*", now)
        if (disk_full is not None) != journal.disk_full:
            journal.simulate_disk_full(disk_full is not None)
            self.log.append((now, "journal_disk_full", "*",
                             "on" if journal.disk_full else "off"))


def standard_serving_schedule(duration: float = 20.0, *,
                              worker_kill: bool = False) -> FaultSchedule:
    """The canonical serving-resilience scenario for one chaos run:
    a shard killed mid-drive, a second shard hanging later, the
    downstream sink blackholed across the failover, and the journal
    disk filling up inside the blackhole window — all four serving
    fault kinds, overlapping on purpose.  With ``worker_kill`` (for
    fleets running persistent executor workers) a worker process on an
    otherwise-healthy shard is SIGKILLed inside the sink-blackhole
    window too."""
    events = [
        FaultEvent(0.30 * duration, 0.34 * duration, "shard_kill",
                   "shard-1"),
        FaultEvent(0.55 * duration, 0.65 * duration, "executor_hang",
                   "shard-2"),
        FaultEvent(0.40 * duration, 0.55 * duration, "sink_blackhole", "*"),
        FaultEvent(0.45 * duration, 0.55 * duration, "journal_disk_full",
                   "*"),
    ]
    if worker_kill:
        events.append(FaultEvent(0.35 * duration, 0.55 * duration,
                                 "worker_kill", "shard-0"))
    return FaultSchedule(events)


@dataclass
class ServingChaosReport:
    """The loss audit :func:`run_serving_chaos` produces."""

    shards: int
    drivers: int
    duration: float
    seed: int
    workers: int
    requested: int
    delivered: int
    deferred: int
    lost: int
    downstream_delivered: int
    downstream_duplicates: int
    shard_kills: int
    shard_hangs: int
    worker_kills: int
    shard_deaths: int
    restarts: int
    migrations: int
    retries: int
    recovery_times: list[float]
    recovery_bound: float
    journal_records: int
    journal_duplicates: int
    journal_torn: int
    journal_bytes: int
    journal_overflowed: int
    unjournaled: int
    violations: list[str] = field(default_factory=list)
    harness_log: list = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    #: Scenario-DSL provenance: spec name, frames withheld by scheduled
    #: camera blackouts, and frames served as occluded covered-lens views.
    scenario: str = ""
    masked_frames: int = 0
    covered_frames: int = 0

    @property
    def recovery_max(self) -> float:
        return max(self.recovery_times) if self.recovery_times else 0.0

    def format_report(self) -> str:
        """Human-readable audit summary for the CLI."""
        recoveries = (", ".join(f"{r:.2f}s" for r in self.recovery_times)
                      or "none")
        lines = [
            f"Serving chaos — {self.drivers} drivers on {self.shards} "
            f"shards, {self.duration:.0f} s drive (seed {self.seed})",
            f"  faults     kills {self.shard_kills}   hangs "
            f"{self.shard_hangs}   worker kills {self.worker_kills}   "
            f"deaths detected {self.shard_deaths}",
            f"  recovery   restarts {self.restarts}   migrations "
            f"{self.migrations}   retries {self.retries}   "
            f"times [{recoveries}] (bound {self.recovery_bound:.2f}s)",
            f"  ledger     requested {self.requested}   delivered "
            f"{self.delivered}   deferred {self.deferred}   "
            f"lost {self.lost}",
            f"  downstream delivered {self.downstream_delivered}   "
            f"duplicates {self.downstream_duplicates}",
            f"  journal    records {self.journal_records}   duplicates "
            f"{self.journal_duplicates}   torn {self.journal_torn}   "
            f"overflowed {self.journal_overflowed}   "
            f"{self.journal_bytes} bytes",
        ]
        if self.scenario:
            lines.append(
                f"  scenario   {self.scenario}: {self.masked_frames} "
                f"frames withheld (blackout), {self.covered_frames} "
                "occluded frames served (covered)")
        if self.violations:
            lines.append("  VIOLATIONS:")
            lines.extend(f"    - {violation}"
                         for violation in self.violations)
        else:
            lines.append("  invariants: all hold (zero loss, exactly-once "
                         "delivery, clean journal, bounded recovery)")
        return "\n".join(lines)


def run_serving_chaos(model, *, shards: int = 3, drivers: int = 6,
                      duration: float = 20.0, grid_period: float = 0.25,
                      seed: int = 0, workers: int = 0,
                      schedule: FaultSchedule | None = None,
                      recovery_bound: float | None = None,
                      script: DriveScript | None = None,
                      scenario: ScenarioSpec | None = None
                      ) -> ServingChaosReport:
    """Drive a supervised shard fleet through scripted serving chaos.

    Replays ``drivers`` scripted drives (the same synthetic traces the
    serving replay uses) through a :class:`ShardSupervisor` while
    ``schedule`` kills shards, hangs executors, blackholes the sink and
    fills the journal disk — then settles until every restart and
    retransmission has landed and audits the zero-loss ledger.

    Args:
        model: trained ensemble (anything with ``predict_degraded``) or
            a pre-built model registry, shared by every shard.
        shards / drivers / duration / grid_period / seed: fleet size and
            drive shape; the seed fixes the synthetic traces, so a run
            is reproducible end to end (the schedule is already
            deterministic).
        workers: persistent executor workers per shard server (0 =
            in-process).  With workers the default schedule adds a
            ``worker_kill`` event — a real SIGKILL against a worker
            process — and the audit demands it engaged.
        schedule: fault script; :func:`standard_serving_schedule` by
            default (with a worker kill when ``workers`` > 0).
        recovery_bound: maximum acceptable shard death-to-restart time;
            defaults to watchdog latency + maximum restart backoff +
            one grid step.
        script: drive behaviour script; standard all-behaviours when
            omitted.
        scenario: a declarative :class:`ScenarioSpec` for the fleet
            traffic.  Authoritative for ``drivers`` / ``duration`` /
            ``grid_period`` / ``seed``; its environment-track camera
            faults join the fault schedule as scenario-native
            ``camera_covered`` / ``camera_blackout`` events — blackouts
            withhold frame ingestion (IMU-only degradation under the
            zero-loss audit) and the audit demands they engage.
    """
    if scenario is not None:
        if script is not None:
            raise ConfigurationError(
                "pass either scenario or script, not both")
        drivers = scenario.drivers
        duration = scenario.duration
        grid_period = scenario.grid_period
        seed = scenario.seed
    if shards < 2:
        raise ConfigurationError(
            "serving chaos needs >= 2 shards (somewhere to migrate to)")
    if drivers < 1 or duration <= 0 or grid_period <= 0:
        raise ConfigurationError(
            "need drivers >= 1, duration > 0, grid_period > 0")
    if workers < 0:
        raise ConfigurationError(f"workers must be >= 0, got {workers}")
    if schedule is None:
        schedule = standard_serving_schedule(duration,
                                             worker_kill=workers > 0)
    silent_after = 4.0 * grid_period
    backoff_base = 4.0 * grid_period
    backoff_cap = 16.0 * grid_period
    if recovery_bound is None:
        recovery_bound = silent_after + backoff_cap + grid_period
    if scenario is None:
        scenario = (ScenarioSpec.from_script(
                        script, drivers=drivers, duration=duration,
                        grid_period=grid_period, seed=seed)
                    if script is not None
                    else ScenarioSpec.paper_sweep(
                        drivers=drivers, duration=duration,
                        grid_period=grid_period, seed=seed))
    compiled = compile_scenario(scenario)
    instants = compiled.instants
    traces = compiled.traces()

    supervisor = ShardSupervisor(
        model, shards=shards,
        server_options={"max_batch": drivers, "max_delay": grid_period / 10,
                        "queue_capacity": 8 * drivers, "workers": workers},
        degraded_after=2.0 * grid_period, silent_after=silent_after,
        checkpoint_interval=2.0 * grid_period,
        backoff_base=backoff_base, backoff_cap=backoff_cap,
        request_deadline=8.0 * grid_period,
        heartbeat_interval=grid_period)
    session_ids = [supervisor.open_session(trace.driver_id, now=0.0)
                   for trace in traces]
    scenario_events = scenario_fault_events(scenario, session_ids)
    if scenario_events:
        schedule = FaultSchedule([*schedule.events, *scenario_events])
    harness = ServingChaosHarness(schedule, supervisor)
    covered_frames = 0
    for trace in traces:
        covered = np.zeros(len(instants), dtype=bool)
        for fault in scenario.environment.camera_faults:
            if fault.kind == "covered" and fault.hits(trace.driver_id):
                covered |= (instants >= fault.start) & (instants < fault.end)
        covered_frames += int(covered.sum())

    requested: list[tuple[str, int]] = []
    masked_frames = 0
    try:
        for index, instant in enumerate(instants):
            now = float(instant)
            harness.apply(now)
            for sid, trace in zip(session_ids, traces):
                supervisor.ingest_imu(sid, now, trace.imu[index])
                if trace.frame_mask is None or trace.frame_mask[index]:
                    supervisor.ingest_frame(sid, now, trace.frames[index])
                else:
                    masked_frames += 1
                requested.append(
                    (sid, supervisor.request_verdict(sid, now)))
            supervisor.step(now)
        # Settle: no new requests, but keep supervising until the last
        # deadline has expired, every due restart has happened and the
        # sink backlog has drained.
        settle_steps = int(np.ceil(
            (silent_after + backoff_cap + 8.0 * grid_period)
            / grid_period)) + 4
        now = float(duration)
        for _ in range(settle_steps):
            harness.apply(now)
            supervisor.step(now)
            now += grid_period
        supervisor.drain(now)

        requested_ids = set(requested)
        delivered_ids = set(supervisor.delivered_ids)
        deferred_ids = set(supervisor.deferred_ids)
        lost = requested_ids - delivered_ids - deferred_ids
        replay = supervisor.journal.replay()
        journal_ids = replay.ids
        unjournaled = (delivered_ids | deferred_ids) - journal_ids
        downstream = supervisor.sink.delivered
        downstream_dupes = len(downstream) - len(
            {record.record_id for record in downstream})
        stats = supervisor.stats

        violations: list[str] = []
        if lost:
            violations.append(
                f"{len(lost)} admitted windows neither delivered nor "
                f"deferred (e.g. {sorted(lost)[:3]})")
        if delivered_ids & deferred_ids:
            both = delivered_ids & deferred_ids
            violations.append(
                f"{len(both)} windows both delivered and deferred")
        if unjournaled:
            violations.append(
                f"{len(unjournaled)} resolved windows missing from the "
                "journal replay")
        if replay.torn:
            violations.append(
                f"{replay.torn} torn journal frames after a clean close")
        if downstream_dupes:
            violations.append(
                f"{downstream_dupes} duplicate downstream deliveries")
        if supervisor.journal.overflow_depth:
            violations.append(
                f"{supervisor.journal.overflow_depth} journal records "
                "still stuck in the memory overflow")
        has_kill = any(e.kind == "shard_kill" for e in schedule.events)
        if has_kill and harness.kills == 0:
            violations.append(
                "schedule contains shard_kill events but no shard was "
                "killed (chaos did not engage)")
        if has_kill and stats["restarts"] == 0:
            violations.append("a shard died but was never restarted")
        has_worker_kill = any(e.kind == "worker_kill"
                              for e in schedule.events)
        if has_worker_kill and harness.worker_kills == 0:
            violations.append(
                "schedule contains worker_kill events but no worker was "
                "killed (chaos did not engage)")
        if any(e.kind == "camera_blackout" for e in schedule.events) \
                and masked_frames == 0:
            violations.append(
                "schedule contains camera_blackout events but no frame "
                "was withheld (scenario fault did not engage)")
        if any(e.kind == "camera_covered" for e in schedule.events) \
                and covered_frames == 0:
            violations.append(
                "schedule contains camera_covered events but no occluded "
                "frame was served (scenario fault did not engage)")
        for recovery in supervisor.recovery_times:
            if recovery > recovery_bound:
                violations.append(
                    f"shard recovery took {recovery:.2f}s "
                    f"(bound {recovery_bound:.2f}s)")
        if supervisor.pending_windows:
            violations.append(
                f"{supervisor.pending_windows} windows still pending "
                "after drain")

        return ServingChaosReport(
            shards=shards, drivers=drivers, duration=float(duration),
            seed=seed, workers=int(workers),
            requested=len(requested_ids),
            delivered=len(delivered_ids),
            deferred=len(deferred_ids),
            lost=len(lost),
            downstream_delivered=len(downstream),
            downstream_duplicates=downstream_dupes,
            shard_kills=harness.kills,
            shard_hangs=harness.hangs,
            worker_kills=harness.worker_kills,
            shard_deaths=stats["deaths"],
            restarts=stats["restarts"],
            migrations=stats["migrations"],
            retries=stats["retries"],
            recovery_times=list(supervisor.recovery_times),
            recovery_bound=float(recovery_bound),
            journal_records=len(replay.records),
            journal_duplicates=replay.duplicates,
            journal_torn=replay.torn,
            journal_bytes=replay.bytes_read,
            journal_overflowed=supervisor.journal.overflowed,
            unjournaled=len(unjournaled),
            violations=violations,
            harness_log=list(harness.log),
            metrics=supervisor.metrics_snapshot(),
            scenario=scenario.name,
            masked_frames=masked_frames,
            covered_frames=covered_frames,
        )
    finally:
        supervisor.close()
