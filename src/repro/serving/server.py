"""The multi-tenant inference server facade.

Ties the serving subsystem together: :class:`~.sessions.DriverSession`
objects absorb raw readings, the
:class:`~.scheduler.MicroBatchScheduler` coalesces verdict requests from
many sessions into vectorized forward passes, the
:class:`~.registry.ServingModelRegistry` resolves each session's model
variant, and the :class:`~.admission.AdmissionController` keeps the whole
thing bounded under overload.

The server is clock-driven like the rest of the streaming stack: callers
ingest readings and request verdicts with explicit timestamps, then
:meth:`InferenceServer.step` flushes due micro-batches and delivers
verdicts.  When a session's camera stream goes stale mid-drive the
request is dispatched IMU-only and classified through
``predict_degraded`` — the driver keeps getting (flagged) verdicts, which
is the whole point of the PR-1 degraded-mode path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.imu_synth import DEFAULT_WINDOW_STEPS
from repro.exceptions import ServingError
from repro.serving.admission import AdmissionController, AdmissionDecision
from repro.serving.executor import ParallelExecutor
from repro.serving.registry import ServingModelRegistry
from repro.serving.scheduler import (
    MODALITY_BOTH,
    MODALITY_FRAMES,
    MODALITY_IMU,
    InferenceRequest,
    MicroBatch,
    MicroBatchScheduler,
)
from repro.serving.sessions import DriverSession, StreamState


@dataclass
class ServingVerdict:
    """One delivered classification."""

    session_id: str
    sequence: int
    timestamp: float          # the grid instant the request was made for
    predicted: int
    probabilities: np.ndarray
    confidence: float
    degraded: bool
    missing: tuple[str, ...]
    model_key: str
    model_generation: int
    batch_size: int
    latency: float            # request-to-delivery in simulation time


@dataclass
class ServerStats:
    """Server-level counters and latency accounting."""

    requests: int = 0
    verdicts: int = 0
    degraded_verdicts: int = 0
    rejected: int = 0
    unservable: int = 0
    latencies: list[float] = field(default_factory=list)

    def record_latency(self, value: float) -> None:
        self.latencies.append(float(value))

    def latency_percentile(self, percentile: float) -> float:
        """Latency percentile in seconds (0.0 before any verdicts)."""
        if not self.latencies:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies), percentile))


class InferenceServer:
    """Micro-batched multi-driver inference service.

    Args:
        registry: model variants (a bare ensemble may be wrapped with
            :meth:`for_model`).
        max_batch: micro-batch flush size.
        max_delay: micro-batch flush deadline in seconds.
        queue_capacity: bound on queued requests (beyond it the scheduler
            sheds lowest-priority work).
        admission: overload gatekeeper; built with defaults when omitted.
        window_steps: IMU window length for new sessions.
        workers: processes per model variant for batch execution.  The
            default of 1 runs in-process (bit-exact with the pre-executor
            server); N > 1 shards each flushed batch across a
            :class:`~repro.serving.executor.ParallelExecutor` pool.
            Executors snapshot a variant's weights when first used, so a
            hot-swapped model only takes effect after :meth:`close`.
    """

    def __init__(self, registry: ServingModelRegistry, *,
                 max_batch: int = 32, max_delay: float = 0.025,
                 queue_capacity: int = 256,
                 admission: AdmissionController | None = None,
                 window_steps: int = DEFAULT_WINDOW_STEPS,
                 workers: int = 1) -> None:
        self.registry = registry
        self.scheduler = MicroBatchScheduler(max_batch=max_batch,
                                             max_delay=max_delay,
                                             capacity=queue_capacity)
        self.admission = admission or AdmissionController()
        self.window_steps = int(window_steps)
        self.workers = int(workers)
        self.stats = ServerStats()
        self._sessions: dict[str, DriverSession] = {}
        self._outboxes: dict[str, list[ServingVerdict]] = {}
        self._executors: dict[str, ParallelExecutor] = {}

    @classmethod
    def for_model(cls, model, **options) -> "InferenceServer":
        """A server over a single-variant registry (the common case)."""
        registry = ServingModelRegistry()
        registry.register("base", model)
        return cls(registry, **options)

    # -- session lifecycle -----------------------------------------------
    @property
    def sessions(self) -> list[str]:
        """Open session ids."""
        return list(self._sessions)

    def session(self, session_id: str) -> DriverSession:
        """The live session object (for stats/inspection)."""
        if session_id not in self._sessions:
            raise ServingError(f"no open session {session_id!r}")
        return self._sessions[session_id]

    def open_session(self, driver_id: int, *, privacy: str | None = None,
                     session_id: str | None = None,
                     base_priority: float = 0.0) -> str:
        """Open a driver session; raises :class:`ServingError` when full."""
        decision = self.admission.admit_session(len(self._sessions))
        if decision is not AdmissionDecision.ADMIT:
            raise ServingError(
                f"session admission rejected: {decision.value} "
                f"({len(self._sessions)} open)")
        session_id = session_id or f"drv-{driver_id}"
        if session_id in self._sessions:
            raise ServingError(f"session {session_id!r} already open")
        self._sessions[session_id] = DriverSession(
            session_id=session_id, driver_id=int(driver_id),
            privacy=privacy, window_steps=self.window_steps,
            base_priority=base_priority)
        self._outboxes[session_id] = []
        return session_id

    def close_session(self, session_id: str) -> DriverSession:
        """Close a session, returning its final state (with counters)."""
        session = self.session(session_id)
        del self._sessions[session_id]
        self._outboxes.pop(session_id, None)
        return session

    # -- ingest ----------------------------------------------------------
    def ingest_imu(self, session_id: str, timestamp: float,
                   values: np.ndarray) -> None:
        """Feed one raw 12-feature IMU sample into a session."""
        self.session(session_id).ingest_imu(timestamp, values)

    def ingest_frame(self, session_id: str, timestamp: float,
                     image: np.ndarray) -> None:
        """Feed the latest camera frame into a session."""
        self.session(session_id).ingest_frame(timestamp, image)

    # -- request path ----------------------------------------------------
    def request_verdict(self, session_id: str, now: float) -> bool:
        """Ask for a verdict at instant ``now``; True if queued.

        The request carries whatever streams are currently LIVE: a stale
        or dead camera yields an IMU-only (degraded) request and vice
        versa.  Returns False when nothing is servable or admission /
        the queue turned the request away.
        """
        session = self.session(session_id)
        self.stats.requests += 1
        frame = (session.latest_frame()
                 if session.frame_state(now) is StreamState.LIVE else None)
        window = (session.window()
                  if session.imu_state(now) is StreamState.LIVE else None)
        if frame is None and window is None:
            self.stats.unservable += 1
            return False
        priority = session.priority(now)
        if (self.admission.admit_request(priority, self.scheduler)
                is not AdmissionDecision.ADMIT):
            self.stats.rejected += 1
            return False
        request = InferenceRequest(
            session_id=session_id, sequence=session.next_sequence(),
            submitted_at=now, deadline=now + self.scheduler.max_delay,
            priority=priority, model_key=self.registry.route(session.privacy),
            window=window, frame=frame)
        if not self.scheduler.submit(request, now):
            self.stats.rejected += 1
            return False
        return True

    # -- dispatch --------------------------------------------------------
    def step(self, now: float, *, force: bool = False
             ) -> list[ServingVerdict]:
        """Flush due micro-batches and deliver their verdicts."""
        verdicts: list[ServingVerdict] = []
        for batch in self.scheduler.flush(now, force=force):
            verdicts.extend(self._dispatch(batch, now))
        return verdicts

    def drain(self, now: float) -> list[ServingVerdict]:
        """Force-flush everything still queued (end of replay/shutdown)."""
        return self.step(now, force=True)

    def poll(self, session_id: str) -> list[ServingVerdict]:
        """Drain the delivered-verdict outbox of one session."""
        self.session(session_id)  # existence check
        outbox = self._outboxes[session_id]
        self._outboxes[session_id] = []
        return outbox

    def warm_executors(self) -> None:
        """Pre-spawn the worker pools for every registered variant.

        Optional: executors are otherwise created lazily on a variant's
        first dispatch, which puts the pool fork + weight pickling inside
        the first request's latency.
        """
        if self.workers > 1:
            for name in self.registry.names:
                self._model_for(name)

    def close(self) -> None:
        """Release any parallel-executor pools and shared memory."""
        for executor in self._executors.values():
            executor.close()
        self._executors.clear()

    def _model_for(self, model_key: str):
        """The execution target for a batch: the model, or its executor."""
        if self.workers <= 1:
            return self.registry.get(model_key)
        executor = self._executors.get(model_key)
        if executor is None:
            executor = ParallelExecutor(self.registry.get(model_key),
                                        workers=self.workers)
            self._executors[model_key] = executor
        return executor

    def _dispatch(self, batch: MicroBatch, now: float
                  ) -> list[ServingVerdict]:
        model = self._model_for(batch.model_key)
        generation = self.registry.record(batch.model_key).generation
        if batch.modality == MODALITY_BOTH:
            result = model.predict_degraded(
                images=np.stack([r.frame for r in batch.requests]),
                imu=np.stack([r.window for r in batch.requests]))
        elif batch.modality == MODALITY_IMU:
            result = model.predict_degraded(
                imu=np.stack([r.window for r in batch.requests]))
        elif batch.modality == MODALITY_FRAMES:
            result = model.predict_degraded(
                images=np.stack([r.frame for r in batch.requests]))
        else:
            raise ServingError(f"unknown modality {batch.modality!r}")
        verdicts = []
        for index, request in enumerate(batch.requests):
            verdict = ServingVerdict(
                session_id=request.session_id,
                sequence=request.sequence,
                timestamp=request.submitted_at,
                predicted=int(result.predictions[index]),
                probabilities=result.probabilities[index],
                confidence=float(result.confidence[index]),
                degraded=result.degraded,
                missing=result.missing,
                model_key=batch.model_key,
                model_generation=generation,
                batch_size=len(batch.requests),
                latency=now - request.submitted_at,
            )
            verdicts.append(verdict)
            self.stats.verdicts += 1
            if verdict.degraded:
                self.stats.degraded_verdicts += 1
            self.stats.record_latency(verdict.latency)
            session = self._sessions.get(request.session_id)
            if session is not None:
                session.record_verdict(verdict.predicted, verdict.degraded)
                self._outboxes[request.session_id].append(verdict)
        return verdicts
