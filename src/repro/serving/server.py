"""The multi-tenant inference server facade.

Ties the serving subsystem together: :class:`~.sessions.DriverSession`
objects absorb raw readings, the
:class:`~.scheduler.MicroBatchScheduler` coalesces verdict requests from
many sessions into vectorized forward passes, the
:class:`~.registry.ServingModelRegistry` resolves each session's model
variant, and the :class:`~.admission.AdmissionController` keeps the whole
thing bounded under overload.

The server is clock-driven like the rest of the streaming stack: callers
ingest readings and request verdicts with explicit timestamps, then
:meth:`InferenceServer.step` flushes due micro-batches and delivers
verdicts.  When a session's camera stream goes stale mid-drive the
request is dispatched IMU-only and classified through
``predict_degraded`` — the driver keeps getting (flagged) verdicts, which
is the whole point of the PR-1 degraded-mode path.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.datasets.imu_synth import DEFAULT_WINDOW_STEPS
from repro.exceptions import ServingError
from repro.nn.compile.backends import using_backend
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.tracing import Span, Tracer
from repro.serving.admission import AdmissionController, AdmissionDecision
from repro.serving.executor import ParallelExecutor
from repro.serving.registry import ServingModelRegistry
from repro.serving.scheduler import (
    MODALITY_BOTH,
    MODALITY_FRAMES,
    MODALITY_IMU,
    InferenceRequest,
    MicroBatch,
    MicroBatchScheduler,
)
from repro.serving.sessions import DriverSession, StreamState

#: How many times a request survives a failed batch before it is failed
#: explicitly (one retry: transient faults clear, poison pills do not).
MAX_DISPATCH_RETRIES = 1


@dataclass
class ServingVerdict:
    """One delivered classification."""

    session_id: str
    sequence: int
    timestamp: float          # the grid instant the request was made for
    predicted: int
    probabilities: np.ndarray
    confidence: float
    degraded: bool
    missing: tuple[str, ...]
    model_key: str
    model_generation: int
    batch_size: int
    latency: float            # request-to-delivery in simulation time


#: Uniquifies the ``server`` label across concurrently live servers.
_SERVER_IDS = itertools.count(1)


class ServerStats:
    """Server-level counters and latency accounting, registry-backed.

    Counts live in labelled registry instruments (one ``server=srvN``
    series per server instance); reads keep the original dataclass
    shape, and verdict latency percentiles come from a fixed-bucket
    histogram instead of an unbounded sample list.
    """

    def __init__(self, registry: MetricsRegistry | None = None,
                 label: str | None = None) -> None:
        registry = registry or get_registry()
        label = label or f"srv{next(_SERVER_IDS)}"
        self.label = label
        self._counters = {
            name: registry.counter(f"serving_{name}_total", server=label)
            for name in ("requests", "verdicts", "degraded_verdicts",
                         "rejected", "unservable", "dispatch_failures",
                         "requests_failed", "requests_expired")
        }
        self._latency = registry.histogram(
            "serving_verdict_latency_seconds",
            "Request-to-delivery latency in simulation time", server=label)

    def incr(self, name: str, amount: int = 1) -> None:
        self._counters[name].inc(amount)

    def record_latency(self, value: float) -> None:
        self._latency.observe(value)

    def latency_percentile(self, percentile: float) -> float:
        """Estimated latency percentile in seconds (0.0 before verdicts)."""
        return self._latency.percentile(percentile)

    def __getattr__(self, name: str) -> int:
        counters = object.__getattribute__(self, "_counters")
        if name in counters:
            return int(counters[name].value)
        raise AttributeError(name)


class InferenceServer:
    """Micro-batched multi-driver inference service.

    Args:
        registry: model variants (a bare ensemble may be wrapped with
            :meth:`for_model`).
        max_batch: micro-batch flush size.
        max_delay: micro-batch flush deadline in seconds.
        queue_capacity: bound on queued requests (beyond it the scheduler
            sheds lowest-priority work).
        admission: overload gatekeeper; built with defaults when omitted.
        window_steps: IMU window length for new sessions.
        workers: persistent worker processes per model variant.  The
            default of 0 runs in-process (bit-exact with the
            pre-executor server); N >= 1 shards each flushed batch
            across the long-lived workers of a
            :class:`~repro.serving.executor.ParallelExecutor`, and
            :meth:`step` turns into an async two-phase dispatch: every
            due batch is *submitted* to the rings before any result is
            collected, so batches overlap across worker sets while
            admission and queueing (which never touch the workers)
            stay non-blocking throughout.  Executors inherit a
            variant's weights when first used, so a hot-swapped model
            only takes effect after :meth:`close`.
        observability: when False the tracer and per-stage wall-clock
            histograms are disabled (accounting counters stay on) — the
            configuration the overhead benchmark compares against.
        metrics: the registry server telemetry lands in; a private
            per-server registry by default so two servers in one process
            never mix series.
    """

    def __init__(self, registry: ServingModelRegistry, *,
                 max_batch: int = 32, max_delay: float = 0.025,
                 queue_capacity: int = 256,
                 admission: AdmissionController | None = None,
                 window_steps: int = DEFAULT_WINDOW_STEPS,
                 workers: int = 0,
                 observability: bool = True,
                 metrics: MetricsRegistry | None = None) -> None:
        self.registry = registry
        self.observability = bool(observability)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = Tracer(enabled=self.observability)
        self.scheduler = MicroBatchScheduler(max_batch=max_batch,
                                             max_delay=max_delay,
                                             capacity=queue_capacity,
                                             registry=self.metrics)
        self.admission = admission or AdmissionController(
            registry=self.metrics)
        self.window_steps = int(window_steps)
        self.workers = int(workers)
        self.stats = ServerStats(self.metrics)
        label = self.stats.label
        self._stage = {
            stage: self.metrics.histogram(
                f"serving_stage_{stage}_seconds",
                f"Wall-clock time spent in the {stage} stage",
                server=label)
            for stage in ("admission", "queue", "forward", "combine")
        }
        self.last_dispatch_error: BaseException | None = None
        #: Called with each deadline-expired request popped from the
        #: queue (the supervisor's journal-and-defer ladder rung);
        #: expiry is still counted and traced when the hook is unset.
        self.on_expire = None
        # Shed requests must not leave orphaned active traces behind.
        self.scheduler.on_evict = \
            lambda request: self.tracer.discard(request.trace_id)
        # Session admission/eviction is check-then-act over shared dicts;
        # the lock keeps concurrent open/close callers from double
        # admitting past the cap or leaking an outbox.
        self._session_lock = threading.Lock()
        self._sessions: dict[str, DriverSession] = {}
        self._outboxes: dict[str, list[ServingVerdict]] = {}
        self._executors: dict[str, ParallelExecutor] = {}

    @classmethod
    def for_model(cls, model, **options) -> "InferenceServer":
        """A server over a single-variant registry (the common case)."""
        registry = ServingModelRegistry()
        registry.register("base", model)
        return cls(registry, **options)

    # -- session lifecycle -----------------------------------------------
    @property
    def sessions(self) -> list[str]:
        """Open session ids."""
        return list(self._sessions)

    def session(self, session_id: str) -> DriverSession:
        """The live session object (for stats/inspection)."""
        if session_id not in self._sessions:
            raise ServingError(f"no open session {session_id!r}")
        return self._sessions[session_id]

    def open_session(self, driver_id: int, *, privacy: str | None = None,
                     session_id: str | None = None,
                     base_priority: float = 0.0) -> str:
        """Open a driver session; raises :class:`ServingError` when full."""
        session_id = session_id or f"drv-{driver_id}"
        session = DriverSession(
            session_id=session_id, driver_id=int(driver_id),
            privacy=privacy, window_steps=self.window_steps,
            base_priority=base_priority)
        self._install_session(session)
        return session_id

    def adopt_session(self, session: DriverSession) -> str:
        """Install an externally built session (checkpoint migration).

        The supervisor's failover path: a session restored from a dead
        shard's checkpoint — ring buffer, sequence and counters intact —
        joins this server subject to the same admission cap as a fresh
        open, so migration cannot stampede a survivor past its
        provisioned bound.
        """
        self._install_session(session)
        return session.session_id

    def _install_session(self, session: DriverSession) -> None:
        with self._session_lock:
            decision = self.admission.admit_session(len(self._sessions))
            if decision is not AdmissionDecision.ADMIT:
                raise ServingError(
                    f"session admission rejected: {decision.value} "
                    f"({len(self._sessions)} open)")
            if session.session_id in self._sessions:
                raise ServingError(
                    f"session {session.session_id!r} already open")
            self._sessions[session.session_id] = session
            self._outboxes[session.session_id] = []

    def close_session(self, session_id: str) -> DriverSession:
        """Close a session, returning its final state (with counters)."""
        with self._session_lock:
            session = self._sessions.get(session_id)
            if session is None:
                raise ServingError(f"no open session {session_id!r}")
            del self._sessions[session_id]
            self._outboxes.pop(session_id, None)
        return session

    # -- ingest ----------------------------------------------------------
    def ingest_imu(self, session_id: str, timestamp: float,
                   values: np.ndarray) -> None:
        """Feed one raw 12-feature IMU sample into a session."""
        self.session(session_id).ingest_imu(timestamp, values)

    def ingest_frame(self, session_id: str, timestamp: float,
                     image: np.ndarray) -> None:
        """Feed the latest camera frame into a session."""
        self.session(session_id).ingest_frame(timestamp, image)

    # -- request path ----------------------------------------------------
    def request_verdict(self, session_id: str, now: float, *,
                        expires_at: float | None = None) -> bool:
        """Ask for a verdict at instant ``now``; True if queued.

        The request carries whatever streams are currently LIVE: a stale
        or dead camera yields an IMU-only (degraded) request and vice
        versa.  Returns False when nothing is servable or admission /
        the queue turned the request away.  ``expires_at`` sets the
        request-level deadline: past it the request is popped from the
        queue and handed to :attr:`on_expire` instead of dispatched.
        """
        session = self.session(session_id)
        self.stats.incr("requests")
        admit_start = time.perf_counter() if self.observability else 0.0
        frame = (session.latest_frame()
                 if session.frame_state(now) is StreamState.LIVE else None)
        window = (session.window()
                  if session.imu_state(now) is StreamState.LIVE else None)
        if frame is None and window is None:
            self.stats.incr("unservable")
            return False
        priority = session.priority(now)
        if (self.admission.admit_request(priority, self.scheduler)
                is not AdmissionDecision.ADMIT):
            self.stats.incr("rejected")
            return False
        trace_id = self.tracer.start(f"verdict/{session_id}")
        if self.observability:
            admitted = time.perf_counter()
            self._stage["admission"].observe(admitted - admit_start)
            self.tracer.record(trace_id, "admission", admit_start, admitted,
                               session=session_id)
        request = InferenceRequest(
            session_id=session_id, sequence=session.next_sequence(),
            submitted_at=now, deadline=now + self.scheduler.max_delay,
            priority=priority, model_key=self.registry.route(session.privacy),
            window=window, frame=frame, trace_id=trace_id,
            expires_at=(float("inf") if expires_at is None
                        else float(expires_at)))
        if not self.scheduler.submit(request, now):
            self.stats.incr("rejected")
            self.tracer.discard(trace_id)
            return False
        return True

    # -- dispatch --------------------------------------------------------
    def step(self, now: float, *, force: bool = False
             ) -> list[ServingVerdict]:
        """Flush due micro-batches and deliver their verdicts.

        A batch whose execution raises does not take the server down and
        does not vanish silently: the failure lands on a counter, fresh
        requests go back to the queue for one retry, and requests that
        already burned their retry are failed explicitly (counted, trace
        discarded).  Deadline-expired requests are popped before
        flushing and handed to :attr:`on_expire` — counted, traced,
        never silently dropped.

        With workers, dispatch is two-phase: every due batch is
        submitted to its executor's rings first (phase one — by the
        time the first forward pass finishes, every worker already has
        work), then results are collected in submission order (phase
        two).  Collection order matching submission order is what keeps
        the delivered verdict sequence identical to the in-process
        path's — parallelism changes wall-clock, never the stream.
        """
        for request in self.scheduler.pop_expired(now):
            self.stats.incr("requests_expired")
            self.tracer.discard(request.trace_id)
            if self.on_expire is not None:
                self.on_expire(request)
        verdicts: list[ServingVerdict] = []
        pending: list[tuple] = []
        for batch in self.scheduler.flush(now, force=force):
            try:
                if self.workers > 0:
                    pending.append(self._submit_batch(batch))
                else:
                    verdicts.extend(self._dispatch(batch, now))
            except Exception as error:  # noqa: BLE001 — fault barrier
                self._on_dispatch_failure(batch, error)
        for entry in pending:
            try:
                verdicts.extend(self._complete_batch(entry, now))
            except Exception as error:  # noqa: BLE001 — fault barrier
                self._on_dispatch_failure(entry[0], error)
        return verdicts

    def _on_dispatch_failure(self, batch: MicroBatch,
                             error: Exception) -> None:
        """Account a failed batch: retry fresh requests, fail the rest."""
        self.last_dispatch_error = error
        self.stats.incr("dispatch_failures")
        retry: list[InferenceRequest] = []
        for request in batch.requests:
            if request.retries < MAX_DISPATCH_RETRIES:
                request.retries += 1
                retry.append(request)
            else:
                self.stats.incr("requests_failed")
                self.tracer.discard(request.trace_id)
        if retry:
            self.scheduler.requeue(retry)

    def drain(self, now: float) -> list[ServingVerdict]:
        """Force-flush everything still queued (end of replay/shutdown)."""
        return self.step(now, force=True)

    def poll(self, session_id: str) -> list[ServingVerdict]:
        """Drain the delivered-verdict outbox of one session."""
        with self._session_lock:
            outbox = self._outboxes.get(session_id)
            if outbox is None:
                raise ServingError(f"no open session {session_id!r}")
            self._outboxes[session_id] = []
        return outbox

    def warm_executors(self) -> None:
        """Pre-create the persistent executors for every variant.

        Optional: executors are otherwise created lazily on a variant's
        first dispatch.  Workers themselves spawn on the first submitted
        batch either way — the input shapes size their rings.
        """
        if self.workers > 0:
            for name in self.registry.names:
                self._model_for(name)

    def close(self) -> None:
        """Shut down the persistent workers and their shared memory."""
        for executor in self._executors.values():
            executor.close()
        self._executors.clear()

    def _model_for(self, model_key: str):
        """The execution target for a batch: the model, or its executor."""
        if self.workers <= 0:
            return self.registry.get(model_key)
        executor = self._executors.get(model_key)
        if executor is None:
            executor = ParallelExecutor(self.registry.get(model_key),
                                        workers=self.workers,
                                        backend=self.registry.backend_for(
                                            model_key),
                                        metrics=self.metrics)
            self._executors[model_key] = executor
        return executor

    def _stacked_inputs(self, batch: MicroBatch
                        ) -> tuple[np.ndarray | None, np.ndarray | None]:
        """The batch's model inputs as (images, imu) stacks."""
        if batch.modality == MODALITY_BOTH:
            return (np.stack([r.frame for r in batch.requests]),
                    np.stack([r.window for r in batch.requests]))
        if batch.modality == MODALITY_IMU:
            return None, np.stack([r.window for r in batch.requests])
        if batch.modality == MODALITY_FRAMES:
            return np.stack([r.frame for r in batch.requests]), None
        raise ServingError(f"unknown modality {batch.modality!r}")

    def _submit_batch(self, batch: MicroBatch) -> tuple:
        """Phase one of worker dispatch: publish the batch to the rings.

        Returns the pending entry ``_complete_batch`` redeems.  The
        requests are accounted as in-flight from here until collection;
        nothing in this phase waits on a forward pass.
        """
        executor = self._model_for(batch.model_key)
        forward_start = time.perf_counter() if self.observability else 0.0
        images, imu = self._stacked_inputs(batch)
        ticket = executor.submit(images=images, imu=imu)
        self.scheduler.note_inflight(len(batch.requests))
        return batch, executor, ticket, forward_start

    def _complete_batch(self, entry: tuple, now: float
                        ) -> list[ServingVerdict]:
        """Phase two of worker dispatch: collect, then deliver."""
        batch, executor, ticket, forward_start = entry
        try:
            result = executor.collect(ticket)
        finally:
            self.scheduler.note_done(len(batch.requests))
            executor.ring_occupancy()   # refresh gauges post round-trip
        combine_start = time.perf_counter() if self.observability else 0.0
        if self.observability:
            self._stage["forward"].observe(combine_start - forward_start)
        return self._deliver(batch, result, now, forward_start,
                             combine_start, executor.last_shards)

    def _dispatch(self, batch: MicroBatch, now: float
                  ) -> list[ServingVerdict]:
        """In-process dispatch: forward pass and delivery in one call."""
        model = self._model_for(batch.model_key)
        observe = self.observability
        forward_start = time.perf_counter() if observe else 0.0
        images, imu = self._stacked_inputs(batch)
        kwargs = {}
        if images is not None:
            kwargs["images"] = images
        if imu is not None:
            kwargs["imu"] = imu
        # Each variant runs under its registered inference backend;
        # the selection is thread-local, so concurrent dispatch threads
        # can route different variants through different backends.
        with using_backend(self.registry.backend_for(batch.model_key)):
            result = model.predict_degraded(**kwargs)
        combine_start = time.perf_counter() if observe else 0.0
        if observe:
            self._stage["forward"].observe(combine_start - forward_start)
        return self._deliver(batch, result, now, forward_start,
                             combine_start, getattr(model, "last_shards", []))

    def _deliver(self, batch: MicroBatch, result, now: float,
                 forward_start: float, combine_start: float,
                 shards: list) -> list[ServingVerdict]:
        """Turn one batch result into delivered verdicts + traces."""
        generation = self.registry.record(batch.model_key).generation
        observe = self.observability
        verdicts = []
        for index, request in enumerate(batch.requests):
            verdict = ServingVerdict(
                session_id=request.session_id,
                sequence=request.sequence,
                timestamp=request.submitted_at,
                predicted=int(result.predictions[index]),
                probabilities=result.probabilities[index],
                confidence=float(result.confidence[index]),
                degraded=result.degraded,
                missing=result.missing,
                model_key=batch.model_key,
                model_generation=generation,
                batch_size=len(batch.requests),
                latency=now - request.submitted_at,
            )
            verdicts.append(verdict)
            self.stats.incr("verdicts")
            if verdict.degraded:
                self.stats.incr("degraded_verdicts")
            self.stats.record_latency(verdict.latency)
            with self._session_lock:
                session = self._sessions.get(request.session_id)
                if session is not None:
                    session.record_verdict(verdict.predicted,
                                           verdict.degraded)
                    outbox = self._outboxes.get(request.session_id)
                    if outbox is not None:
                        outbox.append(verdict)
        if observe:
            combine_end = time.perf_counter()
            self._stage["combine"].observe(combine_end - combine_start)
            queue_hist = self._stage["queue"]
            size = len(batch.requests)
            forward_meta = {"batch_size": size, "modality": batch.modality}
            for index, request in enumerate(batch.requests):
                queue_hist.observe(batch.flushed_wall - request.enqueued_wall)
                spans = [
                    Span("queue", request.enqueued_wall, batch.flushed_wall),
                    Span("forward", forward_start, combine_start,
                         forward_meta),
                ]
                for lo, hi, start, end in shards:
                    if lo <= index < hi:
                        spans.append(Span("shard", start, end,
                                          {"lo": lo, "hi": hi}))
                        break
                spans.append(Span("combine", combine_start, combine_end))
                self.tracer.complete(request.trace_id, spans)
        return verdicts

    # -- observability ---------------------------------------------------
    def metrics_snapshot(self) -> dict:
        """One merged snapshot: server series + the process registry.

        Server-scoped instruments (stage latencies, scheduler, admission)
        live on the per-server registry; nn-runtime and streaming series
        land on the process default.  The export merges both so one
        document answers for the whole serving path.
        """
        merged = MetricsRegistry()
        merged.merge(self.metrics.snapshot())
        if get_registry() is not self.metrics:
            merged.merge(get_registry().snapshot())
        return merged.snapshot()

    def traces(self) -> list[dict]:
        """JSON-safe dump of the completed-trace ring."""
        return self.tracer.snapshot()
