"""Shard supervisor: N inference-server shards that survive dying.

One :class:`~.server.InferenceServer` owning every driver session is a
single point of failure: a crashed process takes every ring buffer and
queued request with it.  The supervisor grows the serving tier into a
supervised fleet of *shards* — each an independent ``InferenceServer``
owning a consistent-hash slice of driver sessions — and makes the fleet
survive the faults the chaos harness can throw at it:

* **Routing.** A consistent-hash ring (virtual nodes, CRC32) maps each
  session id to its home shard; when a shard leaves the ring only its
  slice of sessions moves, the rest stay put.
* **Watchdog.** Shards are supervised through exactly the heartbeat
  machinery agents use (:mod:`repro.streaming.health`): each supervisor
  step collects a heartbeat from every shard, and a shard whose
  heartbeats stop — crash and hang both look like silence from outside
  the process boundary — walks HEALTHY → DEGRADED → SILENT and is
  declared dead by the registry, not by peeking at its internals.
* **Migration.** A dead shard's sessions are restored from their last
  checkpoint (:mod:`repro.serving.checkpoint`) onto surviving shards —
  bit-exact IMU ring state, preserved request sequence — and its
  in-flight requests get one head-of-line retry on the adoptee; what
  cannot be retried is journaled-and-deferred, never silently dropped.
* **Restart.** Dead shards restart on exponential backoff (a
  crash-looping shard must not burn the fleet's CPU re-forking); a
  restarted shard rejoins the ring and its home sessions migrate back
  live (no checkpoint staleness — the source is a healthy survivor).
* **Degradation ladder.** ``full → IMU-only → journal-and-defer``: a
  request that cannot run full-fidelity on its home shard retries on a
  survivor where the restored (possibly frame-stale) session naturally
  degrades to IMU-only; when no shard can answer before the deadline
  the window is journaled as *deferred* — durable, accounted, replayable.

The process boundary is simulated the way the rest of this codebase
simulates infrastructure: a :class:`ShardHandle` refuses calls
(:class:`~repro.exceptions.ShardUnavailableError`) once the chaos
harness crashes it, exactly like a connection refused — the supervisor
never reads a dead shard's memory.
"""

from __future__ import annotations

import bisect
import tempfile
import zlib
from dataclasses import dataclass, field

from repro.exceptions import (
    ConfigurationError,
    ServingError,
    ShardTimeoutError,
    ShardUnavailableError,
)
from repro.obs.metrics import MetricsRegistry
from repro.serving.checkpoint import CheckpointStore
from repro.serving.journal import (
    KIND_DEFERRED,
    StoreAndForwardSink,
    VerdictJournal,
    VerdictRecord,
)
from repro.serving.registry import ServingModelRegistry
from repro.serving.server import InferenceServer, ServingVerdict
from repro.serving.sessions import DriverSession
from repro.streaming.health import HealthRegistry, HealthState, Heartbeat


def _hash32(key: str) -> int:
    return zlib.crc32(key.encode("utf-8")) & 0xFFFFFFFF


class HashRing:
    """Consistent-hash ring over shard names with virtual nodes.

    ``replicas`` virtual points per shard smooth the slice sizes; a
    session id routes to the first point clockwise from its own hash.
    Removing a shard moves only the sessions in its slice — the
    migration-minimizing property the rebalance path relies on.
    """

    def __init__(self, *, replicas: int = 64) -> None:
        if replicas < 1:
            raise ConfigurationError("replicas must be >= 1")
        self.replicas = int(replicas)
        self._points: list[tuple[int, str]] = []
        self._nodes: set[str] = set()

    @property
    def nodes(self) -> set[str]:
        return set(self._nodes)

    def add(self, name: str) -> None:
        if name in self._nodes:
            return
        self._nodes.add(name)
        for index in range(self.replicas):
            point = (_hash32(f"{name}#{index}"), name)
            bisect.insort(self._points, point)

    def remove(self, name: str) -> None:
        if name not in self._nodes:
            return
        self._nodes.discard(name)
        self._points = [p for p in self._points if p[1] != name]

    def route(self, key: str, *, exclude: set[str] | None = None) -> str | None:
        """The shard owning ``key`` (skipping ``exclude``), or ``None``."""
        exclude = exclude or set()
        candidates = [p for p in self._points if p[1] not in exclude]
        if not candidates:
            return None
        index = bisect.bisect_left(candidates, (_hash32(key), ""))
        return candidates[index % len(candidates)][1]


#: Shard lifecycle states.
SHARD_UP = "up"
SHARD_DOWN = "down"


@dataclass
class ShardHandle:
    """The supervisor's view of one shard across a process boundary.

    ``crashed`` / ``hung`` are the chaos harness's levers: a crashed
    shard's calls raise :class:`ShardUnavailableError` (connection
    refused), a hung shard's raise :class:`ShardTimeoutError` (the
    caller's watchdog timer firing).  The supervisor only learns about
    either through failed calls and missed heartbeats.
    """

    name: str
    server: InferenceServer | None = None
    state: str = SHARD_UP
    crashed: bool = False
    hung: bool = False
    restarts: int = 0
    backoff: float = 0.0
    restart_at: float | None = None
    died_at: float | None = None
    up_since: float = 0.0
    heartbeat_seq: int = 0
    last_cause: str = ""
    sessions: set[str] = field(default_factory=set)

    def _check(self) -> None:
        if self.state != SHARD_UP or self.server is None or self.crashed:
            raise ShardUnavailableError(f"shard {self.name!r} is down")
        if self.hung:
            raise ShardTimeoutError(f"shard {self.name!r} timed out")

    # -- supervised calls (every one may raise like a dead remote) --------
    def heartbeat(self, now: float) -> Heartbeat:
        self._check()
        self.heartbeat_seq += 1
        return Heartbeat(agent_id=self.name, timestamp=now,
                         sequence=self.heartbeat_seq,
                         readings_taken=int(self.server.stats.verdicts))

    def open(self, driver_id: int, *, privacy: str | None,
             session_id: str, base_priority: float) -> None:
        self._check()
        self.server.open_session(driver_id, privacy=privacy,
                                 session_id=session_id,
                                 base_priority=base_priority)
        self.sessions.add(session_id)

    def adopt(self, session: DriverSession) -> None:
        self._check()
        self.server.adopt_session(session)
        self.sessions.add(session.session_id)

    def evict(self, session_id: str) -> DriverSession:
        self._check()
        session = self.server.close_session(session_id)
        self.sessions.discard(session_id)
        return session

    def ingest_imu(self, session_id: str, now: float, values) -> None:
        self._check()
        self.server.ingest_imu(session_id, now, values)

    def ingest_frame(self, session_id: str, now: float, image) -> None:
        self._check()
        self.server.ingest_frame(session_id, now, image)

    def request(self, session_id: str, now: float,
                expires_at: float) -> int | None:
        """Queue a verdict request; returns the shard sequence or None."""
        self._check()
        before = self.server.session(session_id).counters.requests
        if self.server.request_verdict(session_id, now,
                                       expires_at=expires_at):
            return before + 1
        return None

    def step(self, now: float, *, force: bool = False) -> list[ServingVerdict]:
        self._check()
        return self.server.step(now, force=force)

    def export_session(self, session_id: str) -> DriverSession:
        self._check()
        return self.server.session(session_id)


@dataclass
class PendingWindow:
    """Ledger entry for one admitted (driver, window) awaiting a verdict."""

    session_id: str
    window_id: int
    requested_at: float
    expires_at: float
    shard: str
    shard_sequence: int
    retried: bool = False


@dataclass
class MigrationEvent:
    """One session move, for the chaos report and tests."""

    at: float
    session_id: str
    source: str
    target: str
    via: str  # "checkpoint" (source dead) or "live" (rebalance)


class ShardSupervisor:
    """Runs, watches, restarts and migrates a fleet of serving shards.

    Args:
        model: trained ensemble (anything with ``predict_degraded``) or
            a :class:`ServingModelRegistry` shared by every shard.
        shards: shard count (each its own :class:`InferenceServer`).
        server_options: keyword options forwarded to each shard's
            ``InferenceServer`` (max_batch, max_delay, ...).
        degraded_after / silent_after: heartbeat-silence thresholds (in
            simulation seconds) before a shard is DEGRADED / declared
            dead, straight through :class:`HealthRegistry`.
        checkpoint_interval: seconds between per-session snapshots; the
            failover staleness bound.
        checkpoint_dir: optional directory for persisted checkpoints.
        backoff_base / backoff_factor / backoff_cap: exponential restart
            backoff for dead shards.
        request_deadline: per-request deadline (seconds after submit)
            before the degradation ladder journals-and-defers a window.
        journal: the durable verdict journal; a temp-file journal is
            created when omitted.
        downstream: verdict consumer for the store-and-forward sink.
        heartbeat_interval: how often shards are polled for liveness.
    """

    def __init__(self, model, *, shards: int = 2,
                 server_options: dict | None = None,
                 degraded_after: float = 0.5, silent_after: float = 1.5,
                 checkpoint_interval: float = 1.0,
                 checkpoint_dir: str | None = None,
                 backoff_base: float = 0.5, backoff_factor: float = 2.0,
                 backoff_cap: float = 8.0,
                 request_deadline: float = 2.0,
                 journal: VerdictJournal | None = None,
                 downstream=None,
                 heartbeat_interval: float = 0.25) -> None:
        if shards < 1:
            raise ConfigurationError("need at least one shard")
        if backoff_base <= 0 or backoff_factor < 1 or backoff_cap <= 0:
            raise ConfigurationError(
                "need backoff_base > 0, backoff_factor >= 1, "
                "backoff_cap > 0")
        if request_deadline <= 0:
            raise ConfigurationError("request_deadline must be positive")
        self.registry = self._as_registry(model)
        self.server_options = dict(server_options or {})
        self.backoff_base = float(backoff_base)
        self.backoff_factor = float(backoff_factor)
        self.backoff_cap = float(backoff_cap)
        self.request_deadline = float(request_deadline)
        self.heartbeat_interval = float(heartbeat_interval)
        self.metrics = MetricsRegistry()
        if journal is None:
            handle = tempfile.NamedTemporaryFile(
                prefix="verdict-journal-", suffix=".wal", delete=False)
            handle.close()
            journal = VerdictJournal(handle.name, registry=self.metrics)
        self.journal = journal
        self.sink = StoreAndForwardSink(journal, downstream,
                                        registry=self.metrics)
        self.health = HealthRegistry(degraded_after=degraded_after,
                                     silent_after=silent_after,
                                     detector_factory=None)
        self.checkpoints = CheckpointStore(interval=checkpoint_interval,
                                           directory=checkpoint_dir)
        self.ring = HashRing()
        self._shards: dict[str, ShardHandle] = {}
        self._assign: dict[str, str | None] = {}
        self._meta: dict[str, dict] = {}
        self._pending: dict[tuple[str, int], PendingWindow] = {}
        self._by_shard_seq: dict[tuple[str, str, int], tuple[str, int]] = {}
        self._next_window: dict[str, int] = {}
        self._next_heartbeat = 0.0
        self.delivered_ids: set[tuple[str, int]] = set()
        self.deferred_ids: set[tuple[str, int]] = set()
        self.migrations: list[MigrationEvent] = []
        self.recovery_times: list[float] = []
        self._obs_restarts = self.metrics.counter(
            "serving_supervisor_restarts_total",
            "Dead shards restarted by the supervisor")
        self._obs_deaths = self.metrics.counter(
            "serving_supervisor_shard_deaths_total",
            "Shards declared dead by the heartbeat watchdog")
        self._obs_migrations = self.metrics.counter(
            "serving_supervisor_migrations_total",
            "Driver sessions migrated between shards")
        self._obs_retries = self.metrics.counter(
            "serving_supervisor_retries_total",
            "In-flight requests retried on a surviving shard")
        self._obs_deferred = self.metrics.counter(
            "serving_supervisor_deferred_total",
            "Windows journaled-and-deferred by the degradation ladder")
        self._obs_up = self.metrics.gauge(
            "serving_supervisor_shards_up", "Shards currently serving")
        self._obs_recovery = self.metrics.histogram(
            "serving_supervisor_recovery_seconds",
            "Shard death to back-in-ring, in simulation time")
        for index in range(int(shards)):
            name = f"shard-{index}"
            handle = ShardHandle(name=name,
                                 server=self._build_server())
            self._shards[name] = handle
            self.ring.add(name)
            self.health.register(name, 0.0)
        self._obs_up.set(len(self._shards))

    @staticmethod
    def _as_registry(model) -> ServingModelRegistry:
        if isinstance(model, ServingModelRegistry):
            return model
        registry = ServingModelRegistry()
        registry.register("base", model)
        return registry

    def _build_server(self) -> InferenceServer:
        server = InferenceServer(self.registry, **self.server_options)
        server.on_expire = self._on_request_expired
        return server

    # -- introspection ---------------------------------------------------
    @property
    def shard_names(self) -> list[str]:
        return sorted(self._shards)

    def shard(self, name: str) -> ShardHandle:
        if name not in self._shards:
            raise ServingError(f"no shard named {name!r}")
        return self._shards[name]

    @property
    def shards_up(self) -> list[str]:
        return sorted(name for name, handle in self._shards.items()
                      if handle.state == SHARD_UP)

    def assignment(self, session_id: str) -> str | None:
        """The shard currently owning a session (None while parked)."""
        if session_id not in self._assign:
            raise ServingError(f"no open session {session_id!r}")
        return self._assign[session_id]

    @property
    def sessions(self) -> list[str]:
        return sorted(self._assign)

    @property
    def pending_windows(self) -> int:
        return len(self._pending)

    # -- session lifecycle -----------------------------------------------
    def open_session(self, driver_id: int, *, now: float = 0.0,
                     privacy: str | None = None,
                     session_id: str | None = None,
                     base_priority: float = 0.0) -> str:
        """Open a session on its hash-home shard (or the next survivor)."""
        session_id = session_id or f"drv-{driver_id}"
        if session_id in self._assign:
            raise ServingError(f"session {session_id!r} already open")
        target = self.ring.route(session_id)
        if target is None:
            raise ShardUnavailableError("no shard is up")
        self._shards[target].open(driver_id, privacy=privacy,
                                  session_id=session_id,
                                  base_priority=base_priority)
        self._assign[session_id] = target
        self._meta[session_id] = {"driver_id": int(driver_id),
                                  "privacy": privacy,
                                  "base_priority": float(base_priority)}
        self._next_window[session_id] = 0
        # Checkpoint at open so a crash before the first interval still
        # has something to restore (an empty ring beats a lost session).
        self.checkpoints.take(self._shards[target].export_session(session_id),
                              now)
        return session_id

    def close_session(self, session_id: str) -> None:
        shard_name = self.assignment(session_id)
        if shard_name is not None:
            handle = self._shards[shard_name]
            try:
                handle.evict(session_id)
            except ServingError:
                # A crashed-but-undetected shard raises before its
                # handle forgets the id; discard it here so the later
                # death sweep cannot resurrect a closed session.
                handle.sessions.discard(session_id)
        del self._assign[session_id]
        self._meta.pop(session_id, None)
        self._next_window.pop(session_id, None)
        self.checkpoints.discard(session_id)

    # -- ingest ----------------------------------------------------------
    def ingest_imu(self, session_id: str, now: float, values) -> None:
        """Route an IMU sample to the owning shard (lost while parked)."""
        shard_name = self.assignment(session_id)
        if shard_name is None:
            return
        try:
            self._shards[shard_name].ingest_imu(session_id, now, values)
        except ServingError:
            pass  # dead-but-undetected shard: the sample dies with it

    def ingest_frame(self, session_id: str, now: float, image) -> None:
        """Route a camera frame to the owning shard (lost while parked)."""
        shard_name = self.assignment(session_id)
        if shard_name is None:
            return
        try:
            self._shards[shard_name].ingest_frame(session_id, now, image)
        except ServingError:
            pass

    # -- request path ----------------------------------------------------
    def request_verdict(self, session_id: str, now: float) -> int:
        """Admit one (driver, window) into the ledger; returns window id.

        The ladder, in order: queue on the owning shard; on shard
        failure, one immediate retry on the next survivor around the
        ring (which only helps once the session has migrated there);
        otherwise journal-and-defer.  Every admitted window id resolves
        to exactly one of *delivered* or *deferred* — never nothing.
        """
        shard_name = self.assignment(session_id)
        window_id = self._next_window[session_id]
        self._next_window[session_id] = window_id + 1
        expires_at = now + self.request_deadline
        key = (session_id, window_id)
        if shard_name is not None:
            if self._try_request(self._shards[shard_name], key, now,
                                 expires_at, retried=False):
                return window_id
            survivor = self.ring.route(
                session_id, exclude={shard_name})
            if survivor is not None and \
                    session_id in self._shards[survivor].sessions:
                self._obs_retries.inc()
                if self._try_request(self._shards[survivor], key, now,
                                     expires_at, retried=True):
                    return window_id
        self._defer(key, now, reason="no shard could accept the request")
        return window_id

    def _try_request(self, handle: ShardHandle, key: tuple[str, int],
                     now: float, expires_at: float, *,
                     retried: bool) -> bool:
        session_id, window_id = key
        try:
            sequence = handle.request(session_id, now, expires_at)
        except ServingError:
            return False
        if sequence is None:
            return False
        pending = PendingWindow(session_id=session_id, window_id=window_id,
                                requested_at=now, expires_at=expires_at,
                                shard=handle.name, shard_sequence=sequence,
                                retried=retried)
        self._pending[key] = pending
        self._by_shard_seq[(handle.name, session_id, sequence)] = key
        return True

    def _defer(self, key: tuple[str, int], now: float, *,
               reason: str) -> None:
        session_id, window_id = key
        if key in self.delivered_ids or key in self.deferred_ids:
            return
        self.deferred_ids.add(key)
        self._obs_deferred.inc()
        self._pending.pop(key, None)
        self.sink.offer(VerdictRecord(
            session_id=session_id, sequence=window_id, timestamp=now,
            kind=KIND_DEFERRED, reason=reason))

    def _on_request_expired(self, request) -> None:
        """Server hook: a queued request hit its deadline — defer it."""
        for shard_name in self._shards:
            seq_key = (shard_name, request.session_id, request.sequence)
            key = self._by_shard_seq.get(seq_key)
            if key is not None and key in self._pending:
                self._by_shard_seq.pop(seq_key, None)
                self._defer(key, request.expires_at,
                            reason="request deadline expired in queue")
                return

    # -- the supervision loop --------------------------------------------
    def step(self, now: float) -> list[ServingVerdict]:
        """One supervision tick: heartbeats, watchdog, restarts,
        checkpoints, shard dispatch, deadline sweep, sink pump."""
        self._collect_heartbeats(now)
        for shard_name, state in self.health.step(now):
            handle = self._shards[shard_name]
            if state is HealthState.SILENT and handle.state == SHARD_UP:
                self._declare_dead(handle, now, cause="heartbeat silence")
        self._maybe_restart(now)
        self._take_checkpoints(now)
        verdicts = self._step_shards(now)
        self._sweep_deadlines(now)
        self.sink.pump(now)
        return verdicts

    def drain(self, now: float) -> list[ServingVerdict]:
        """Force-flush every live shard and resolve every open window.

        End-of-replay semantics: whatever is still pending after the
        force flush — windows stuck in a dead shard, requests nothing
        could serve — is journaled-and-deferred, so the ledger closes
        with ``delivered + deferred == requested`` and zero silent loss.
        """
        verdicts = self._step_shards(now, force=True)
        for key in list(self._pending):
            self._defer(key, now, reason="undelivered at drain")
        self.sink.pump(now)
        self.journal.sync()
        return verdicts

    def close(self) -> None:
        for handle in self._shards.values():
            if handle.server is not None:
                handle.server.close()
        self.journal.close()

    # -- step phases -----------------------------------------------------
    def _collect_heartbeats(self, now: float) -> None:
        if now < self._next_heartbeat:
            return
        self._next_heartbeat = now + self.heartbeat_interval
        for handle in self._shards.values():
            if handle.state != SHARD_UP:
                continue
            try:
                beat = handle.heartbeat(now)
            except ServingError:
                continue  # silence; the registry clock keeps running
            self.health.record_heartbeat(beat, now)

    def _take_checkpoints(self, now: float) -> None:
        for session_id, shard_name in self._assign.items():
            if shard_name is None:
                continue
            if not self.checkpoints.due(session_id, now):
                continue
            handle = self._shards[shard_name]
            try:
                session = handle.export_session(session_id)
            except ServingError:
                continue  # dead-but-undetected: keep the old checkpoint
            self.checkpoints.take(session, now)

    def _step_shards(self, now: float, *,
                     force: bool = False) -> list[ServingVerdict]:
        collected: list[ServingVerdict] = []
        for handle in self._shards.values():
            if handle.state != SHARD_UP:
                continue
            try:
                verdicts = handle.step(now, force=force)
            except ServingError:
                continue  # watchdog heartbeats will catch persistent death
            for verdict in verdicts:
                self._record_verdict(handle.name, verdict)
                collected.append(verdict)
        return collected

    def _record_verdict(self, shard_name: str,
                        verdict: ServingVerdict) -> None:
        key = self._by_shard_seq.pop(
            (shard_name, verdict.session_id, verdict.sequence), None)
        if key is None:
            return  # stale verdict from before a migration; already resolved
        pending = self._pending.pop(key, None)
        if pending is None or key in self.delivered_ids \
                or key in self.deferred_ids:
            return
        self.delivered_ids.add(key)
        self.sink.offer(VerdictRecord(
            session_id=key[0], sequence=key[1], timestamp=verdict.timestamp,
            predicted=verdict.predicted,
            confidence=verdict.confidence, degraded=verdict.degraded,
            model_key=verdict.model_key))

    def _sweep_deadlines(self, now: float) -> None:
        for key, pending in list(self._pending.items()):
            if now <= pending.expires_at:
                continue
            shard = self._shards.get(pending.shard)
            if shard is not None and shard.state == SHARD_UP:
                # The shard's own pop_expired will fire on its next
                # step; only windows stranded on dead shards need the
                # supervisor to act.
                continue
            self._defer(key, now, reason="owning shard died before dispatch")

    # -- death, migration, restart ---------------------------------------
    def _declare_dead(self, handle: ShardHandle, now: float, *,
                      cause: str) -> None:
        handle.state = SHARD_DOWN
        if handle.server is not None:
            # Reap the shard's persistent executor workers: a dead shard
            # must not leak worker processes or their shared segments
            # (its replacement spawns a fresh set).  Close is defensive
            # here — a simulated crash leaves a perfectly healthy server
            # object behind.
            try:
                handle.server.close()
            except Exception:  # noqa: BLE001 — dying shard: best effort
                pass
        handle.server = None
        handle.died_at = now
        handle.last_cause = cause
        handle.backoff = min(
            self.backoff_cap,
            self.backoff_base * self.backoff_factor ** handle.restarts)
        handle.restart_at = now + handle.backoff
        self.ring.remove(handle.name)
        self._obs_deaths.inc()
        self._obs_up.set(len(self.shards_up))
        orphans = sorted(handle.sessions)
        handle.sessions = set()
        for session_id in orphans:
            self._migrate_from_checkpoint(session_id, handle.name, now)
        self._retry_pending_of(handle.name, now)

    def _migrate_from_checkpoint(self, session_id: str, source: str,
                                 now: float) -> None:
        meta = self._meta.get(session_id)
        if meta is None or session_id not in self._assign:
            return  # closed while its shard was dead-but-undetected
        target_name = self.ring.route(session_id)
        if target_name is None:
            self._assign[session_id] = None  # parked until a restart
            return
        target = self._shards[target_name]
        session = self.checkpoints.restore(session_id)
        if session is None:
            session = DriverSession(session_id=session_id,
                                    driver_id=meta["driver_id"],
                                    privacy=meta["privacy"],
                                    base_priority=meta["base_priority"])
        try:
            target.adopt(session)
        except ServingError:
            self._assign[session_id] = None
            return
        self._assign[session_id] = target_name
        self._obs_migrations.inc()
        self.migrations.append(MigrationEvent(
            at=now, session_id=session_id, source=source,
            target=target_name, via="checkpoint"))

    def _retry_pending_of(self, shard_name: str, now: float) -> None:
        """Head-of-line retry for windows stranded in a dead shard."""
        stranded = [key for key, p in self._pending.items()
                    if p.shard == shard_name]
        for key in stranded:
            pending = self._pending.pop(key)
            self._by_shard_seq.pop(
                (shard_name, pending.session_id, pending.shard_sequence),
                None)
            if pending.retried:
                self._defer(key, now, reason="retry shard also died")
                continue
            session_id = pending.session_id
            target_name = self._assign.get(session_id)
            if target_name is None:
                self._defer(key, now, reason="no surviving shard")
                continue
            self._obs_retries.inc()
            if not self._try_request(self._shards[target_name], key, now,
                                     pending.expires_at, retried=True):
                self._defer(key, now,
                            reason="survivor could not serve the retry")

    def _maybe_restart(self, now: float) -> None:
        for handle in self._shards.values():
            if handle.state != SHARD_DOWN or handle.restart_at is None:
                continue
            if now < handle.restart_at:
                continue
            self._restart(handle, now)

    def _restart(self, handle: ShardHandle, now: float) -> None:
        handle.server = self._build_server()
        handle.state = SHARD_UP
        handle.crashed = False
        handle.hung = False
        handle.restarts += 1
        handle.restart_at = None
        handle.up_since = now
        self.ring.add(handle.name)
        self.health.record_activity(handle.name, now)
        self._obs_restarts.inc()
        self._obs_up.set(len(self.shards_up))
        if handle.died_at is not None:
            self.recovery_times.append(now - handle.died_at)
            self._obs_recovery.observe(now - handle.died_at)
            handle.died_at = None
        self._rebalance_to(handle, now)

    def _rebalance_to(self, handle: ShardHandle, now: float) -> None:
        """Move home sessions back onto a freshly restarted shard.

        Parked sessions (no shard could adopt them) restore from their
        checkpoint; sessions living on a survivor move *live* — the
        survivor exports the current object, so nothing regresses to an
        older snapshot.
        """
        for session_id, current in list(self._assign.items()):
            home = self.ring.route(session_id)
            if home != handle.name or current == handle.name:
                continue
            if current is None:
                session = self.checkpoints.restore(session_id)
                if session is None:
                    meta = self._meta[session_id]
                    session = DriverSession(
                        session_id=session_id,
                        driver_id=meta["driver_id"],
                        privacy=meta["privacy"],
                        base_priority=meta["base_priority"])
                via = "checkpoint"
                source = "(parked)"
            else:
                source_handle = self._shards[current]
                try:
                    session = source_handle.evict(session_id)
                except ServingError:
                    continue  # the survivor just died too; next watchdog
                via = "live"
                source = current
            try:
                handle.adopt(session)
            except ServingError:
                self._assign[session_id] = None
                continue
            self._assign[session_id] = handle.name
            self._obs_migrations.inc()
            self.migrations.append(MigrationEvent(
                at=now, session_id=session_id, source=source,
                target=handle.name, via=via))

    # -- observability ---------------------------------------------------
    def metrics_snapshot(self) -> dict:
        """Supervisor + every live shard's series in one document."""
        from repro.obs.metrics import get_registry

        merged = MetricsRegistry()
        merged.merge(self.metrics.snapshot())
        for handle in self._shards.values():
            if handle.server is not None:
                merged.merge(handle.server.metrics.snapshot())
        merged.merge(get_registry().snapshot())
        return merged.snapshot()

    @property
    def recovery_p99(self) -> float:
        """p99 of shard death-to-restart, in simulation seconds."""
        return self._obs_recovery.percentile(99.0)

    @property
    def stats(self) -> dict:
        """Plain-dict supervisor counters for reports and tests."""
        return {
            "shards_up": len(self.shards_up),
            "deaths": int(self._obs_deaths.value),
            "restarts": int(self._obs_restarts.value),
            "migrations": int(self._obs_migrations.value),
            "retries": int(self._obs_retries.value),
            "deferred": int(self._obs_deferred.value),
            "delivered": len(self.delivered_ids),
            "pending": len(self._pending),
            "recovery_max": (max(self.recovery_times)
                             if self.recovery_times else 0.0),
        }
