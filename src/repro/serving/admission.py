"""Admission control and backpressure for the inference server.

A serving tier protecting an alert path must fail *selectively*: when the
offered load exceeds what the models can clear, the work that is dropped
should be the work that matters least.  This mirrors the shedding policy
of :mod:`repro.streaming.reliability` (frames are shed before IMU tuples
there): here, cold sessions are rejected before alert-adjacent or
degraded ones, and nothing already queued is dropped for a request that
would rank below it.

Two gates:

* **session admission** — a hard cap on concurrently open sessions (the
  multi-tenancy bound the operator provisioned for);
* **request admission** — above the queue high-watermark only requests
  that beat the lowest queued priority are admitted (the scheduler then
  sheds that victim), so the queue composition ratchets toward the
  highest-value work under sustained overload.
"""

from __future__ import annotations

import enum
import itertools

from repro.exceptions import ConfigurationError
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.serving.scheduler import MicroBatchScheduler


class AdmissionDecision(enum.Enum):
    """Outcome of one admission check."""

    ADMIT = "admit"
    REJECT_QUEUE_FULL = "reject_queue_full"
    REJECT_SESSIONS_FULL = "reject_sessions_full"


_GATE_IDS = itertools.count(1)


class AdmissionStats:
    """Admission counters, registry-backed.

    Same migration as :class:`~repro.serving.scheduler.SchedulerStats`:
    the fields are labelled registry counters, reads keep the original
    dataclass shape.
    """

    _FIELDS = ("requests_admitted", "requests_rejected",
               "sessions_admitted", "sessions_rejected")

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        registry = registry or get_registry()
        label = f"g{next(_GATE_IDS)}"
        self._counters = {
            name: registry.counter(f"serving_admission_{name}_total",
                                   gate=label)
            for name in self._FIELDS
        }

    def incr(self, name: str) -> None:
        self._counters[name].inc()

    def __getattr__(self, name: str) -> int:
        counters = object.__getattribute__(self, "_counters")
        if name in counters:
            return int(counters[name].value)
        raise AttributeError(name)


class AdmissionController:
    """Bounded-capacity gatekeeper in front of the scheduler.

    Args:
        max_sessions: concurrently open driver sessions allowed.
        high_watermark: queue-depth fraction (of scheduler capacity) above
            which requests must beat the lowest queued priority to enter.
    """

    def __init__(self, *, max_sessions: int = 1024,
                 high_watermark: float = 0.9,
                 registry: MetricsRegistry | None = None) -> None:
        if max_sessions < 1:
            raise ConfigurationError("max_sessions must be >= 1")
        if not 0.0 < high_watermark <= 1.0:
            raise ConfigurationError("high_watermark must be in (0, 1]")
        self.max_sessions = int(max_sessions)
        self.high_watermark = float(high_watermark)
        self.stats = AdmissionStats(registry)

    def admit_session(self, active_sessions: int) -> AdmissionDecision:
        """Whether a new driver session may open."""
        if active_sessions >= self.max_sessions:
            self.stats.incr("sessions_rejected")
            return AdmissionDecision.REJECT_SESSIONS_FULL
        self.stats.incr("sessions_admitted")
        return AdmissionDecision.ADMIT

    def admit_request(self, priority: float,
                      scheduler: MicroBatchScheduler) -> AdmissionDecision:
        """Whether a verdict request may enter the scheduler's queue."""
        threshold = self.high_watermark * scheduler.capacity
        if scheduler.depth >= threshold:
            lowest = scheduler.lowest_priority()
            if lowest is not None and priority <= lowest:
                self.stats.incr("requests_rejected")
                return AdmissionDecision.REJECT_QUEUE_FULL
        self.stats.incr("requests_admitted")
        return AdmissionDecision.ADMIT
