"""Concurrent scripted-drive replay through the inference server.

The serving subsystem's proof of life: synthesize N drivers' raw streams
(per-segment IMU physics + rendered cabin frames, the same generators the
collection framework uses), feed them into an :class:`InferenceServer`
instant by instant, and measure what the service actually delivers —
request throughput, wall-clock latency percentiles, batch sizes, and the
degraded-verdict coverage for drivers whose camera dies mid-replay.

Stream synthesis happens *before* the timed loop so the report measures
the serving path (session upkeep, scheduling, vectorized inference), not
the synthetic data generators.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.darnet import DriveScript
from repro.exceptions import ConfigurationError
from repro.scenarios.compiler import (
    DriverTrace,
    compile_scenario,
    synthesize_trace,
)
from repro.scenarios.spec import ScenarioSpec
from repro.serving.registry import ServingModelRegistry
from repro.serving.server import InferenceServer, ServingVerdict

__all__ = ["DriverTrace", "ReplayReport", "replay_concurrent_drives",
           "synthesize_trace"]


@dataclass
class ReplayReport:
    """What the server delivered over one concurrent replay."""

    drivers: int
    duration: float
    grid_period: float
    workers: int
    instants: int
    requests: int
    verdicts: int
    degraded_verdicts: int
    rejected: int
    shed: int
    unservable: int
    wall_seconds: float
    throughput_rps: float
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    mean_batch_size: float
    max_batch_size: int
    killed_sessions: list[str] = field(default_factory=list)
    verdicts_per_session: dict[str, int] = field(default_factory=dict)
    degraded_per_session: dict[str, int] = field(default_factory=dict)
    #: Name of the scenario spec that shaped the fleet traffic.
    scenario: str = ""
    #: Frames the scenario's camera blackouts withheld from the server.
    masked_frames: int = 0
    #: Merged metrics snapshot + completed traces captured before the
    #: server was torn down (empty when observability was off).
    metrics: dict = field(default_factory=dict)
    traces: list[dict] = field(default_factory=list)
    #: Delivered verdicts in delivery order, reduced to the
    #: deterministic fields — the golden-replay fixture compares these.
    verdict_log: list[dict] = field(default_factory=list)

    def format_report(self) -> str:
        """Human-readable throughput/latency summary."""
        lines = [
            f"Serving replay — {self.drivers} concurrent drivers, "
            f"{self.duration:.0f} s at {1 / self.grid_period:.0f} Hz "
            f"({self.instants} grid instants, {self.workers} "
            f"worker{'s' if self.workers != 1 else ''})",
            f"  requests   {self.requests}   verdicts {self.verdicts}   "
            f"degraded {self.degraded_verdicts}   rejected {self.rejected}"
            f"   shed {self.shed}",
            f"  throughput {self.throughput_rps:8.1f} verdicts/s   "
            f"wall {self.wall_seconds:.2f} s",
            f"  latency    p50 {self.latency_p50_ms:6.2f} ms   "
            f"p95 {self.latency_p95_ms:6.2f} ms   "
            f"p99 {self.latency_p99_ms:6.2f} ms",
            f"  batching   mean {self.mean_batch_size:.1f}   "
            f"max {self.max_batch_size}",
        ]
        if self.scenario:
            masked = (f"   {self.masked_frames} frames withheld by "
                      "camera blackout" if self.masked_frames else "")
            lines.append(f"  scenario   {self.scenario}{masked}")
        if self.killed_sessions:
            killed = ", ".join(self.killed_sessions)
            lines.append(f"  camera killed mid-replay: {killed}")
            for sid in self.killed_sessions:
                lines.append(
                    f"    {sid}: {self.verdicts_per_session.get(sid, 0)} "
                    f"verdicts, {self.degraded_per_session.get(sid, 0)} "
                    f"degraded")
        return "\n".join(lines)


def _as_registry(model, backend: str = "numpy-fast") -> ServingModelRegistry:
    if isinstance(model, ServingModelRegistry):
        return model
    registry = ServingModelRegistry(backend=backend)
    registry.register("base", model)
    return registry


def replay_concurrent_drives(model, *, drivers: int = 8,
                             duration: float = 20.0,
                             grid_period: float = 0.25,
                             max_batch: int | None = None,
                             max_delay: float = 0.025,
                             queue_capacity: int | None = None,
                             kill_camera: int = 0,
                             kill_at_fraction: float = 0.5,
                             frame_stale_after: float = 1.0,
                             seed: int = 0,
                             script: DriveScript | None = None,
                             scenario: ScenarioSpec | None = None,
                             workers: int = 0,
                             backend: str = "numpy-fast",
                             observability: bool = True) -> ReplayReport:
    """Replay ``drivers`` concurrent scripted drives through a server.

    Args:
        model: a trained ensemble (anything with ``predict_degraded``) or
            a pre-built :class:`ServingModelRegistry`.
        drivers: concurrent driver sessions.
        duration: simulated drive length in seconds.
        grid_period: verdict cadence (paper: 0.25 s).
        max_batch: micro-batch size; defaults to ``drivers`` (one batch
            per grid instant); pass 1 for the unbatched baseline.
        max_delay: micro-batch flush deadline.
        queue_capacity: scheduler bound; defaults to ``4 * drivers``.
        kill_camera: how many drivers lose their camera stream mid-replay
            (their verdicts must degrade, not stop).
        kill_at_fraction: when the cameras die, as a fraction of duration.
        frame_stale_after: staleness horizon after which a silent camera
            stream is treated as missing.
        seed: randomness seed for the synthetic drives.
        script: drive script; a standard all-behaviours script by default.
        scenario: a declarative :class:`ScenarioSpec` describing the fleet
            traffic.  When given it is authoritative for ``drivers``,
            ``duration``, ``grid_period`` and ``seed`` (mutually exclusive
            with ``script``).  When omitted, the replay runs the default
            paper-sweep spec — bit-identical with the pre-DSL hardcoded
            script.
        workers: persistent worker processes for flushed batches
            (0 = in-process, bit-exact with the pre-executor replay;
            N >= 1 shards batches across N long-lived workers and
            delivers the same verdict sequence).
        backend: inference backend for dispatch when ``model`` is a bare
            model (a pre-built registry keeps its own backend config);
            ``numpy-compiled`` is bit-exact with the default fast path.
        observability: stage histograms and request tracing; disable for
            the overhead benchmark's baseline measurement.
    """
    if scenario is not None and script is not None:
        raise ConfigurationError(
            "pass either scenario or script, not both")
    if scenario is None:
        if drivers < 1 or duration <= 0:
            raise ConfigurationError("need drivers >= 1 and duration > 0")
        scenario = (ScenarioSpec.from_script(
                        script, drivers=drivers, duration=duration,
                        grid_period=grid_period, seed=seed)
                    if script is not None
                    else ScenarioSpec.paper_sweep(
                        drivers=drivers, duration=duration,
                        grid_period=grid_period, seed=seed))
    # The spec is the single source of truth for the fleet shape.
    drivers = scenario.drivers
    duration = scenario.duration
    grid_period = scenario.grid_period
    seed = scenario.seed
    if not 0 <= kill_camera <= drivers:
        raise ConfigurationError("kill_camera must be in [0, drivers]")
    rng = np.random.default_rng(seed)
    compiled = compile_scenario(scenario)
    instants = compiled.instants
    traces = compiled.traces()

    registry = _as_registry(model, backend)
    registry.warm()
    server = InferenceServer(
        registry,
        max_batch=drivers if max_batch is None else max_batch,
        max_delay=max_delay,
        queue_capacity=(4 * drivers if queue_capacity is None
                        else queue_capacity),
        workers=workers,
        observability=observability)
    server.warm_executors()
    session_ids = [server.open_session(trace.driver_id)
                   for trace in traces]
    for sid in session_ids:
        server.session(sid).frame_stale_after = frame_stale_after
    killed = sorted(rng.choice(drivers, size=kill_camera, replace=False)) \
        if kill_camera else []
    killed_sessions = [session_ids[int(i)] for i in killed]
    kill_time = kill_at_fraction * duration

    submitted_at: dict[tuple[str, int], float] = {}
    wall_latencies: list[float] = []
    delivered: list[ServingVerdict] = []

    def absorb(verdicts: list[ServingVerdict]) -> None:
        done = time.perf_counter()
        for verdict in verdicts:
            key = (verdict.session_id, verdict.sequence)
            start = submitted_at.pop(key, None)
            if start is not None:
                wall_latencies.append(done - start)
        delivered.extend(verdicts)

    masked_frames = 0
    wall_start = time.perf_counter()
    for k, t in enumerate(instants):
        now = float(t)
        for index, (sid, trace) in enumerate(zip(session_ids, traces)):
            server.ingest_imu(sid, now, trace.imu[k])
            masked = (trace.frame_mask is not None
                      and not trace.frame_mask[k])
            if masked:
                masked_frames += 1
            if not masked and not (sid in killed_sessions
                                   and now >= kill_time):
                server.ingest_frame(sid, now, trace.frames[k])
            session = server.session(sid)
            before = session.counters.requests
            if server.request_verdict(sid, now):
                submitted_at[(sid, before + 1)] = time.perf_counter()
        absorb(server.step(now))
        absorb(server.step(now + max_delay))
    absorb(server.drain(duration))
    wall_seconds = time.perf_counter() - wall_start
    metrics = server.metrics_snapshot() if observability else {}
    traces = server.traces() if observability else []
    server.close()

    per_session: dict[str, int] = {sid: 0 for sid in session_ids}
    degraded_per: dict[str, int] = {sid: 0 for sid in session_ids}
    for verdict in delivered:
        per_session[verdict.session_id] += 1
        if verdict.degraded:
            degraded_per[verdict.session_id] += 1
    latencies_ms = 1e3 * np.asarray(wall_latencies or [0.0])
    stats = server.stats
    return ReplayReport(
        drivers=drivers,
        duration=float(duration),
        grid_period=float(grid_period),
        workers=int(workers),
        instants=len(instants),
        requests=stats.requests,
        verdicts=stats.verdicts,
        degraded_verdicts=stats.degraded_verdicts,
        rejected=stats.rejected,
        shed=server.scheduler.stats.shed,
        unservable=stats.unservable,
        wall_seconds=wall_seconds,
        throughput_rps=(stats.verdicts / wall_seconds
                        if wall_seconds > 0 else 0.0),
        latency_p50_ms=float(np.percentile(latencies_ms, 50)),
        latency_p95_ms=float(np.percentile(latencies_ms, 95)),
        latency_p99_ms=float(np.percentile(latencies_ms, 99)),
        mean_batch_size=server.scheduler.stats.mean_batch_size,
        max_batch_size=server.scheduler.stats.max_batch_size,
        killed_sessions=killed_sessions,
        verdicts_per_session=per_session,
        degraded_per_session=degraded_per,
        scenario=scenario.name,
        masked_frames=masked_frames,
        metrics=metrics,
        traces=traces,
        verdict_log=[
            {"session_id": verdict.session_id,
             "sequence": verdict.sequence,
             "predicted": verdict.predicted,
             "degraded": verdict.degraded}
            for verdict in delivered
        ],
    )
