"""Fixed-stride shared-memory ring buffer with seqlock slot stamps.

The persistent-worker executor moves micro-batches between the server
process and its workers through preallocated rings: the producer writes
a request's float32 slab straight into a claimed slot and publishes it
with two index writes; the consumer maps the slot back into ndarrays
without a single pickle.  This module is the protocol layer — layout,
cursors and stamps — and is deliberately agnostic about *where* the
bytes live: the executor hands it ``multiprocessing.shared_memory``
buffers, the property tests hand it a plain ``bytearray`` and drive both
ends from threads, so the protocol is exercised deterministically on a
1-core CI host.

Layout (``capacity`` slots of ``slot_payload`` usable bytes each)::

    [ header 128 B: head u64 @0 | tail u64 @64 ]     (cache-line padded)
    [ slot 0: begin u64 | used u64 | payload ... | end u64 ]
    [ slot 1: ... ]

Protocol (single producer, single consumer — one ring per direction per
worker, so SPSC is structural, not an honor system):

* The producer claims slot ``head % capacity`` when ``head - tail <
  capacity`` (otherwise the ring is full and :meth:`SlotRing.claim`
  returns ``None`` — backpressure costs the caller a retry, never a
  block inside the ring).  Claiming stamps ``begin`` with the slot's
  1-based sequence number, publishing writes the payload length and
  stamps ``end`` with the same sequence, then advances ``head``.
* The consumer reads slot ``tail % capacity`` when ``head > tail`` and
  validates **both** stamps against the expected sequence before
  trusting the payload; a writer that died between the two stamp writes
  leaves them disagreeing and the reader raises
  :class:`~repro.exceptions.TornSlotError` instead of decoding garbage.
  :meth:`SlotRing.release` advances ``tail``, returning the slot to the
  producer.

Cursors are aligned 8-byte slots 64 bytes apart, written with single
``memoryview`` assignments (one ``memcpy`` under CPython — effectively
atomic for aligned word-sized stores on the platforms we run on) and
strictly monotonic, Lamport style: each side writes only its own cursor
and reads the other's, so no compare-and-swap is needed anywhere.
"""

from __future__ import annotations

import struct

from repro.exceptions import RingError, TornSlotError

#: Bytes reserved for the head/tail cursor pair (one cache line each).
HEADER_BYTES = 128
_HEAD_OFF = 0
_TAIL_OFF = 64
#: Per-slot overhead: begin stamp, used length (leading) + end stamp.
SLOT_OVERHEAD = 24

_U64 = struct.Struct("<Q")


class ClaimedSlot:
    """A producer-side slot reservation: write ``payload``, then publish.

    ``payload`` is a writable memoryview over the slot's usable bytes;
    nothing is visible to the consumer until :meth:`SlotRing.publish`
    stamps and advances the cursor.
    """

    __slots__ = ("sequence", "payload", "_index")

    def __init__(self, sequence: int, payload: memoryview, index: int) -> None:
        self.sequence = sequence
        self.payload = payload
        self._index = index


class PoppedSlot:
    """A consumer-side view of one published slot: read, then release.

    ``payload`` is valid only until :meth:`SlotRing.release` — after
    that the producer may overwrite the slot.  Copy anything that must
    outlive the release.
    """

    __slots__ = ("sequence", "payload", "_index")

    def __init__(self, sequence: int, payload: memoryview, index: int) -> None:
        self.sequence = sequence
        self.payload = payload
        self._index = index


class SlotRing:
    """SPSC ring of fixed-stride slots over any writable buffer.

    Args:
        buf: the backing buffer (``shared_memory.SharedMemory.buf``, a
            ``bytearray``, ``mmap`` — anything memoryview-able and
            writable) of at least :meth:`required_bytes`.
        capacity: slot count; must be >= 1.
        slot_payload: usable bytes per slot.
        reset: zero the header cursors (the creating side passes True;
            an attaching side must not, or it would erase live state).
    """

    def __init__(self, buf, *, capacity: int, slot_payload: int,
                 reset: bool = False) -> None:
        if capacity < 1:
            raise RingError(f"ring capacity must be >= 1, got {capacity}")
        if slot_payload < 1:
            raise RingError(
                f"slot payload must be >= 1 byte, got {slot_payload}")
        self.capacity = int(capacity)
        self.slot_payload = int(slot_payload)
        self.slot_stride = self.slot_payload + SLOT_OVERHEAD
        need = self.required_bytes(capacity, slot_payload)
        self._buf = memoryview(buf)
        if len(self._buf) < need:
            raise RingError(
                f"ring buffer holds {len(self._buf)} bytes, "
                f"layout needs {need}")
        if reset:
            self._buf[:HEADER_BYTES] = bytes(HEADER_BYTES)
        # Producer-local claim cursor: several slots may be claimed
        # ahead of the published head (a submit fans a batch out before
        # any publish lands).  Only the producing side advances it, so
        # it lives on the object, not in the shared header.
        self._claimed: int | None = None

    @staticmethod
    def required_bytes(capacity: int, slot_payload: int) -> int:
        """Total backing-buffer size for a given geometry."""
        return HEADER_BYTES + capacity * (slot_payload + SLOT_OVERHEAD)

    # -- cursor plumbing -------------------------------------------------
    def _read_u64(self, offset: int) -> int:
        return _U64.unpack_from(self._buf, offset)[0]

    def _write_u64(self, offset: int, value: int) -> None:
        _U64.pack_into(self._buf, offset, value)

    @property
    def head(self) -> int:
        """Count of slots ever published (producer cursor)."""
        return self._read_u64(_HEAD_OFF)

    @property
    def tail(self) -> int:
        """Count of slots ever released (consumer cursor)."""
        return self._read_u64(_TAIL_OFF)

    @property
    def occupancy(self) -> int:
        """Published-but-unreleased slots (0 .. capacity)."""
        return self.head - self.tail

    @property
    def full(self) -> bool:
        return self.occupancy >= self.capacity

    def _slot_offset(self, sequence: int) -> int:
        return HEADER_BYTES + ((sequence - 1) % self.capacity) * \
            self.slot_stride

    # -- producer side ---------------------------------------------------
    def claim(self) -> ClaimedSlot | None:
        """Reserve the next slot, or ``None`` when the ring is full."""
        if self._claimed is None:
            self._claimed = self.head
        if self._claimed - self.tail >= self.capacity:
            return None
        sequence = self._claimed + 1
        self._claimed = sequence
        offset = self._slot_offset(sequence)
        self._write_u64(offset, sequence)  # begin stamp
        payload = self._buf[offset + 16:offset + 16 + self.slot_payload]
        return ClaimedSlot(sequence, payload, offset)

    def publish(self, claim: ClaimedSlot, used: int) -> None:
        """Make a claimed slot visible to the consumer.

        ``used`` is the payload byte count actually written; the end
        stamp lands *after* it, and the head cursor last, so a consumer
        that sees the new head is guaranteed coherent stamps + length.
        """
        if not 0 <= used <= self.slot_payload:
            raise RingError(
                f"slot used={used} outside [0, {self.slot_payload}]")
        if claim.sequence != self.head + 1:
            raise RingError(
                f"publish out of order: claim seq {claim.sequence}, "
                f"head {self.head}")
        offset = claim._index
        claim.payload.release()
        self._write_u64(offset + 8, used)
        self._write_u64(offset + 16 + self.slot_payload, claim.sequence)
        self._write_u64(_HEAD_OFF, claim.sequence)

    # -- consumer side ---------------------------------------------------
    def try_pop(self) -> PoppedSlot | None:
        """The oldest unconsumed slot, or ``None`` when the ring is empty.

        Raises:
            TornSlotError: the slot's stamps disagree with its expected
                sequence — the producer died (or scribbled) mid-publish.
        """
        tail = self.tail
        if self.head <= tail:
            return None
        sequence = tail + 1
        offset = self._slot_offset(sequence)
        begin = self._read_u64(offset)
        end = self._read_u64(offset + 16 + self.slot_payload)
        if begin != sequence or end != sequence:
            raise TornSlotError(
                f"slot seq {sequence}: stamps begin={begin} end={end}")
        used = self._read_u64(offset + 8)
        if used > self.slot_payload:
            raise TornSlotError(
                f"slot seq {sequence}: used={used} exceeds payload "
                f"{self.slot_payload}")
        payload = self._buf[offset + 16:offset + 16 + used]
        return PoppedSlot(sequence, payload, offset)

    def release(self, popped: PoppedSlot) -> None:
        """Return a popped slot to the producer (advances tail)."""
        if popped.sequence != self.tail + 1:
            raise RingError(
                f"release out of order: popped seq {popped.sequence}, "
                f"tail {self.tail}")
        popped.payload.release()
        self._write_u64(_TAIL_OFF, popped.sequence)

    def close(self) -> None:
        """Drop the buffer view (required before shared memory unlink)."""
        self._buf.release()
