"""Micro-batching request scheduler.

The throughput win in multi-stream serving comes from coalescing pending
requests from many sessions into single vectorized forward passes (the
shared-model batching of the edge-analytics follow-up work): one batch-32
convolution is far cheaper than 32 batch-1 convolutions, because the BLAS
kernels amortize and the per-layer Python overhead is paid once.

The :class:`MicroBatchScheduler` holds submitted requests in per-group
queues — a group is ``(model variant, modality mask)``, the unit that can
share one forward pass — and flushes a group when it reaches the batch
size *or* its oldest request hits the flush deadline (default 25 ms), so
a lone driver still gets a bounded-latency verdict at 3 a.m.

Under overload the queue sheds lowest-priority work first, mirroring the
send-buffer policy of :mod:`repro.streaming.reliability` (frames are shed
before IMU there; cold sessions are shed before alert-adjacent ones
here).
"""

from __future__ import annotations

import itertools
import math
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError
from repro.obs.metrics import COUNT_BUCKETS, MetricsRegistry, get_registry

#: Modality masks a request can carry (which streams were live).
MODALITY_BOTH = "both"
MODALITY_IMU = "imu"
MODALITY_FRAMES = "frames"


@dataclass
class InferenceRequest:
    """One session's verdict request at one grid instant."""

    session_id: str
    sequence: int
    submitted_at: float
    deadline: float
    priority: float
    model_key: str
    window: np.ndarray | None = None
    frame: np.ndarray | None = None
    #: Observability: trace id minted at admission, wall-clock enqueue
    #: time stamped by the scheduler, and the dispatch-retry count used
    #: by the server's batch-failure recovery path.
    trace_id: str | None = None
    enqueued_wall: float = 0.0
    retries: int = 0
    #: Request-level deadline in simulation time: past this instant the
    #: request must not be dispatched — it is popped via
    #: :meth:`MicroBatchScheduler.pop_expired` and handed to the server's
    #: degradation ladder instead of silently rotting in the queue.
    expires_at: float = math.inf

    @property
    def modality(self) -> str:
        """Which streams this request carries."""
        if self.window is not None and self.frame is not None:
            return MODALITY_BOTH
        if self.window is not None:
            return MODALITY_IMU
        if self.frame is not None:
            return MODALITY_FRAMES
        raise ConfigurationError("request carries no data at all")

    @property
    def group(self) -> tuple[str, str]:
        """The batching group: same variant + same modality batch together."""
        return (self.model_key, self.modality)


@dataclass
class MicroBatch:
    """A flushed group slice headed for one vectorized forward pass."""

    model_key: str
    modality: str
    requests: list[InferenceRequest]
    flushed_at: float
    #: Wall-clock flush instant — per-request queue latency is
    #: ``flushed_wall - request.enqueued_wall``.
    flushed_wall: float = 0.0

    def __len__(self) -> int:
        return len(self.requests)


#: Uniquifies the ``sched`` label so concurrent schedulers (one per
#: server, several per test process) never share counter series.
_SCHED_IDS = itertools.count(1)


class SchedulerStats:
    """Queue and batching telemetry, registry-backed.

    The PR-2 ad-hoc counter dataclass migrated onto the metrics
    registry: counts live in labelled :class:`~repro.obs.metrics.Counter`
    instruments and the batch-size distribution in a fixed-bucket
    histogram, while the original read API (``stats.shed``,
    ``stats.mean_batch_size`` …) keeps working for callers and tests.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        registry = registry or get_registry()
        label = f"s{next(_SCHED_IDS)}"
        self._counters = {
            name: registry.counter(f"serving_scheduler_{name}_total",
                                   sched=label)
            for name in ("submitted", "rejected", "shed", "requeued",
                         "batches", "dispatched", "expired")
        }
        self._batch_size = registry.histogram(
            "serving_batch_size", "Requests per flushed micro-batch",
            buckets=COUNT_BUCKETS, sched=label)
        self._depth = registry.gauge("serving_queue_depth",
                                     "Requests currently queued",
                                     sched=label)
        self._depth_peak = registry.gauge("serving_queue_depth_peak",
                                          "High-watermark of queue depth",
                                          sched=label)
        self._inflight = registry.gauge(
            "serving_inflight_requests",
            "Requests handed to executors and not yet collected",
            sched=label)

    # -- write API (scheduler-internal) ----------------------------------
    def incr(self, name: str, amount: int = 1) -> None:
        self._counters[name].inc(amount)

    def record_batch(self, size: int) -> None:
        self._counters["batches"].inc()
        self._counters["dispatched"].inc(size)
        self._batch_size.observe(size)

    def record_depth(self, depth: int) -> None:
        self._depth.set(depth)
        self._depth_peak.set_max(depth)

    def record_inflight(self, delta: int) -> None:
        self._inflight.inc(delta)

    # -- read API (unchanged shape) --------------------------------------
    def __getattr__(self, name: str) -> int:
        counters = object.__getattribute__(self, "_counters")
        if name in counters:
            return int(counters[name].value)
        raise AttributeError(name)

    @property
    def batch_size_sum(self) -> int:
        return int(self._batch_size.sum)

    @property
    def max_batch_size(self) -> int:
        return int(self._batch_size.max)

    @property
    def depth_peak(self) -> int:
        return int(self._depth_peak.value)

    @property
    def mean_batch_size(self) -> float:
        return self._batch_size.mean

    @property
    def inflight(self) -> int:
        return int(self._inflight.value)


class MicroBatchScheduler:
    """Deadline/size-triggered micro-batcher with priority shedding.

    Args:
        max_batch: flush a group as soon as it holds this many requests.
        max_delay: seconds a request may wait before its group is flushed
            regardless of size (the micro-batching deadline).
        capacity: total queued requests across all groups; beyond this the
            lowest-priority queued request is shed (or the incoming one is
            rejected if it *is* the lowest).

    Thread safety: queue and counter mutations are guarded by an internal
    lock, and :meth:`flush` *pops* due batches while holding it — the
    (slow) forward pass over a flushed batch happens after flush returns,
    with the lock released, so concurrent sessions can keep enqueueing
    while a batch executes.
    """

    def __init__(self, *, max_batch: int = 32, max_delay: float = 0.025,
                 capacity: int = 256,
                 registry: MetricsRegistry | None = None) -> None:
        if max_batch < 1 or capacity < 1:
            raise ConfigurationError("max_batch and capacity must be >= 1")
        if max_delay < 0:
            raise ConfigurationError("max_delay must be >= 0")
        self.max_batch = int(max_batch)
        self.max_delay = float(max_delay)
        self.capacity = int(capacity)
        self.stats = SchedulerStats(registry)
        #: Called with each shed request (the server discards its trace).
        self.on_evict = None
        self._queues: dict[tuple[str, str], list[InferenceRequest]] = {}
        # RLock so public methods can share the locked helpers below.
        self._lock = threading.RLock()

    # -- queue state -----------------------------------------------------
    @property
    def depth(self) -> int:
        """Total queued requests across all groups."""
        with self._lock:
            return sum(len(queue) for queue in self._queues.values())

    def lowest_priority(self) -> float | None:
        """Priority of the most sheddable queued request."""
        with self._lock:
            lowest: float | None = None
            for queue in self._queues.values():
                for request in queue:
                    if lowest is None or request.priority < lowest:
                        lowest = request.priority
            return lowest

    # -- submission ------------------------------------------------------
    def submit(self, request: InferenceRequest, now: float) -> bool:
        """Enqueue a request; returns False if it was rejected.

        When the queue is at capacity the lowest-priority queued request
        is shed to make room; an incoming request that does not beat the
        current lowest priority is rejected instead (shedding it would be
        pointless churn).
        """
        del now
        with self._lock:
            if self.depth >= self.capacity:
                lowest = self.lowest_priority()
                if lowest is not None and request.priority <= lowest:
                    self.stats.incr("rejected")
                    return False
                self._shed_lowest()
            request.enqueued_wall = time.perf_counter()
            self._queues.setdefault(request.group, []).append(request)
            self.stats.incr("submitted")
            self.stats.record_depth(self.depth)
            return True

    def requeue(self, requests: list[InferenceRequest]) -> None:
        """Put already-admitted requests back at the head of their queues.

        The batch-failure recovery path: a flushed batch whose execution
        raised is not silently lost — its requests go back for another
        flush.  Re-queued work bypasses the capacity check (it was
        admitted once; dropping it now would turn a transient model
        fault into silent data loss) and is *not* re-counted as
        submitted, so the accounting identity
        ``submitted == dispatched + shed + queued`` still holds.

        Head-of-line standing is preserved by ``retries``, not insert
        position: :meth:`flush` sorts retried requests ahead of fresh
        ones regardless of priority, and :meth:`_shed_lowest` victimizes
        fresh requests first — a retried request held its queue slot
        once already; a newly arrived higher-priority batch must not
        reorder (or shed) it into a second delay.
        """
        with self._lock:
            for request in requests:
                request.enqueued_wall = time.perf_counter()
                self._queues.setdefault(request.group, []).insert(0, request)
                self.stats.incr("requeued")
            self.stats.record_depth(self.depth)

    def note_inflight(self, count: int) -> None:
        """Account requests handed to an executor (async front-end).

        Between a batch's submit and its collect the requests are
        neither queued nor delivered; the inflight gauge is what makes
        that window visible — admission keeps using queue depth, so
        nothing here blocks or throttles submission.
        """
        self.stats.record_inflight(count)

    def note_done(self, count: int) -> None:
        """Account requests whose executor round-trip finished."""
        self.stats.record_inflight(-count)

    def pop_expired(self, now: float) -> list[InferenceRequest]:
        """Remove and return every queued request past its deadline.

        A request whose ``expires_at`` has passed would deliver a
        verdict about a window the driver has already left; dispatching
        it wastes a batch slot and silently dropping it loses the
        window.  The server pops expired requests each step and routes
        them down the degradation ladder (journal-and-defer) instead.
        """
        expired: list[InferenceRequest] = []
        with self._lock:
            for group in list(self._queues):
                queue = self._queues[group]
                keep = [r for r in queue if r.expires_at > now]
                if len(keep) != len(queue):
                    expired.extend(r for r in queue if r.expires_at <= now)
                    if keep:
                        self._queues[group] = keep
                    else:
                        del self._queues[group]
            if expired:
                self.stats.incr("expired", len(expired))
                self.stats.record_depth(self.depth)
        return expired

    def _shed_lowest(self) -> None:
        with self._lock:
            victim_group: tuple[str, str] | None = None
            victim_index = -1
            victim_key = (np.inf, np.inf)
            for group, queue in self._queues.items():
                for index, request in enumerate(queue):
                    # Retried requests are shed last (they were admitted
                    # once; shedding them now would silently lose work
                    # the failure-recovery path promised to retry), and
                    # strict < keeps the earliest submission among
                    # equals, so the oldest of the lowest class goes
                    # first.
                    key = (request.retries, request.priority)
                    if key < victim_key:
                        victim_group, victim_index = group, index
                        victim_key = key
            if victim_group is not None:
                victim = self._queues[victim_group].pop(victim_index)
                self.stats.incr("shed")
                if self.on_evict is not None:
                    self.on_evict(victim)

    # -- flushing --------------------------------------------------------
    def _group_due(self, queue: list[InferenceRequest], now: float) -> bool:
        if len(queue) >= self.max_batch:
            return True
        return bool(queue) and min(r.deadline for r in queue) <= now

    def due(self, now: float) -> bool:
        """Whether any group would flush at ``now``."""
        with self._lock:
            return any(self._group_due(queue, now)
                       for queue in self._queues.values())

    def flush(self, now: float, *, force: bool = False) -> list[MicroBatch]:
        """Pop every due group (all groups when ``force``) as batches.

        Within a group, retried requests dispatch first — a request
        surviving a failed batch keeps its head-of-line standing even
        against a newly arrived higher-priority batch — then
        higher-priority requests (stable for equal priorities,
        preserving submission order), so when a group spans multiple
        batches the alert-adjacent sessions ride in the first one.

        The lock is held only while due batches are popped off the
        queues; the caller runs the forward pass on the returned batches
        with the queues unlocked, so enqueues from other threads are
        never blocked behind model execution.
        """
        batches: list[MicroBatch] = []
        flushed_wall = time.perf_counter()
        with self._lock:
            for group in list(self._queues):
                queue = self._queues[group]
                while queue and (force or self._group_due(queue, now)):
                    queue.sort(key=lambda r: (-r.retries, -r.priority))
                    take, rest = queue[:self.max_batch], queue[self.max_batch:]
                    self._queues[group] = queue = rest
                    batch = MicroBatch(model_key=group[0], modality=group[1],
                                       requests=take, flushed_at=now,
                                       flushed_wall=flushed_wall)
                    batches.append(batch)
                    self.stats.record_batch(len(take))
                if not queue:
                    del self._queues[group]
            if batches:
                self.stats.record_depth(self.depth)
        return batches
