"""Serving model registry: lazy loading, privacy routing, hot swap.

The analytics engine ships several server-side models — the full-fidelity
ensemble plus one distilled dCNN variant per distortion level (paper
§4.3).  The registry is the serving-time map from a session's
privacy/distortion level to the variant that should classify it, with
three operational properties:

* **lazy warm cache** — variants load from the model store on first use
  and stay resident (a cold load mid-drive is paid once per process);
* **ladder routing** — a session at a distortion rung with no dedicated
  variant falls back down the PR-1 escalation ladder
  (:data:`~repro.streaming.runtime.PRIVACY_LADDER`) to the nearest
  less-distorted variant, and finally to the default model;
* **hot swap** — a newly trained model replaces a name atomically;
  requests already dispatched keep the object they were handed, so
  nothing in flight is dropped.

Thread safety: the registry is read on every dispatch and written by
hot-swap/OTA paths on other threads, so every check-then-act sequence
(lazy load in :meth:`~ServingModelRegistry.get`, the model/generation
pair in :meth:`~ServingModelRegistry.swap`) runs under one re-entrant
lock — two racing threads can neither double-invoke a loader nor
observe a new model with a stale generation.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable

from repro.exceptions import ConfigurationError, ServingError
from repro.streaming.runtime import PRIVACY_LADDER


@dataclass
class ModelRecord:
    """One registered variant."""

    name: str
    model: Any = None
    loader: Callable[[], Any] | None = None
    generation: int = 1
    loads: int = 0
    hits: int = 0

    @property
    def loaded(self) -> bool:
        return self.model is not None


class ServingModelRegistry:
    """Named model variants with privacy-level routing.

    Args:
        default: name of the variant used when no route matches; defaults
            to the first registered variant.
        backend: inference backend name every variant executes under
            unless individually overridden at :meth:`register` time
            (see :mod:`repro.nn.compile.backends`).
    """

    def __init__(self, *, default: str | None = None,
                 backend: str = "numpy-fast") -> None:
        from repro.nn.compile.backends import get_backend

        get_backend(backend)   # validate eagerly
        self._records: dict[str, ModelRecord] = {}
        self._routes: dict[str | None, str] = {}
        self._default = default
        self._lock = threading.RLock()
        self.backend = backend
        self._backends: dict[str, str] = {}
        self.swaps = 0

    # -- registration ----------------------------------------------------
    def register(self, name: str, model: Any = None, *,
                 loader: Callable[[], Any] | None = None,
                 backend: str | None = None) -> None:
        """Bind ``name`` to a live model or a lazy loader (exactly one).

        ``backend`` pins this variant to a specific inference backend;
        unset variants follow the registry-wide default (so e.g. the
        dCNN ladder can run int8 plans while the ensemble stays float).
        """
        if (model is None) == (loader is None):
            raise ConfigurationError(
                "register() needs exactly one of model= or loader=")
        if backend is not None:
            from repro.nn.compile.backends import get_backend

            get_backend(backend)
        with self._lock:
            if name in self._records:
                raise ConfigurationError(
                    f"variant {name!r} already registered; use swap()")
            self._records[name] = ModelRecord(name=name, model=model,
                                              loader=loader)
            if backend is not None:
                self._backends[name] = backend
            if self._default is None:
                self._default = name

    def backend_for(self, name: str) -> str:
        """The inference backend name variant ``name`` executes under."""
        with self._lock:
            return self._backends.get(name, self.backend)

    def register_store(self, name: str, directory: str) -> None:
        """Register a lazily loaded ensemble saved by the model store."""
        from repro.core.model_store import load_ensemble

        self.register(name, loader=lambda: load_ensemble(directory))

    @property
    def names(self) -> list[str]:
        """Registered variant names."""
        return list(self._records)

    @property
    def default(self) -> str | None:
        """The fallback variant name."""
        return self._default

    # -- resolution ------------------------------------------------------
    def get(self, name: str) -> Any:
        """The live model for ``name``, loading (and caching) if needed.

        The lazy load runs under the registry lock: concurrent first
        requests for a cold variant invoke the loader exactly once and
        every caller gets the one cached object.
        """
        with self._lock:
            record = self._records.get(name)
            if record is None:
                raise ServingError(f"no model variant named {name!r}")
            if record.model is None:
                record.model = record.loader()
                record.loads += 1
                if record.model is None:
                    raise ServingError(
                        f"loader for {name!r} returned None")
            record.hits += 1
            return record.model

    def record(self, name: str) -> ModelRecord:
        """The registry record for ``name`` (stats, generation)."""
        with self._lock:
            if name not in self._records:
                raise ServingError(f"no model variant named {name!r}")
            return self._records[name]

    def warm(self, *names: str) -> None:
        """Force-load variants ahead of traffic (cold-start avoidance)."""
        for name in names or tuple(self._records):
            self.get(name)

    # -- hot swap --------------------------------------------------------
    def swap(self, name: str, model: Any) -> int:
        """Atomically replace ``name`` with a newly trained model.

        Returns the new generation number.  Batches already dispatched
        hold a reference to the previous object and complete on it;
        queued requests resolve the name at dispatch time and get the new
        model — no request is dropped either way.
        """
        if model is None:
            raise ConfigurationError("cannot swap in a None model")
        with self._lock:
            record = self._records.get(name)
            if record is None:
                raise ServingError(f"no model variant named {name!r}")
            record.model = model
            record.loader = None
            record.generation += 1
            self.swaps += 1
            return record.generation

    # -- privacy routing -------------------------------------------------
    def bind(self, level: str | None, name: str) -> None:
        """Route sessions at distortion ``level`` to variant ``name``."""
        if level not in PRIVACY_LADDER:
            raise ConfigurationError(
                f"unknown privacy level {level!r}; ladder is "
                f"{PRIVACY_LADDER}")
        with self._lock:
            if name not in self._records:
                raise ServingError(f"no model variant named {name!r}")
            self._routes[level] = name

    def route(self, level: str | None) -> str:
        """Variant name serving sessions at distortion ``level``.

        Exact route first; otherwise walk the escalation ladder back
        toward the undistorted rung (a less-distorted model still
        understands a more-distorted session's upsampled frames better
        than nothing); finally the default variant.
        """
        if level not in PRIVACY_LADDER:
            raise ConfigurationError(
                f"unknown privacy level {level!r}; ladder is "
                f"{PRIVACY_LADDER}")
        rung = PRIVACY_LADDER.index(level)
        with self._lock:
            for index in range(rung, -1, -1):
                name = self._routes.get(PRIVACY_LADDER[index])
                if name is not None:
                    return name
            if self._default is None:
                raise ServingError("registry has no variants registered")
            return self._default
