"""Session checkpoint/restore: periodic snapshots of per-driver state.

A shard that dies takes its in-memory :class:`~.sessions.DriverSession`
objects with it — the trailing IMU ring, the latest frame, the request
sequence.  Without checkpoints, a migrated driver cold-starts: no window
until 20 fresh samples arrive, no alert-adjacency, a reset sequence that
breaks (driver, window) verdict identity.  The checkpoint store closes
that gap: the supervisor snapshots each session on an interval, and a
restarted or adopting shard restores the *last checkpoint* — resuming
mid-drive with a bit-exact ring buffer instead of silence.

Snapshots are taken via :meth:`DriverSession.export_state` (arrays
copied, crash-consistent) and restored via
:meth:`DriverSession.from_state`.  The store is in-memory by default —
the supervisor outlives its shards — with optional ``directory``
persistence (one ``.npz`` per session) so a full serving-process restart
can also resume.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.serving.sessions import DriverSession

#: export_state keys that are numpy arrays (persisted as npz members).
_ARRAY_KEYS = ("buffer", "latest_frame")


@dataclass(frozen=True)
class SessionCheckpoint:
    """One timestamped snapshot of one driver session."""

    session_id: str
    taken_at: float
    state: dict

    def restore(self) -> DriverSession:
        """A fresh session carrying this checkpoint's exact state."""
        return DriverSession.from_state(self.state)


def save_checkpoint(path: str, checkpoint: SessionCheckpoint) -> None:
    """Persist one checkpoint as an ``.npz`` (arrays + JSON metadata)."""
    meta = {k: v for k, v in checkpoint.state.items()
            if k not in _ARRAY_KEYS}
    arrays = {"buffer": checkpoint.state["buffer"]}
    frame = checkpoint.state.get("latest_frame")
    if frame is not None:
        arrays["latest_frame"] = frame
    np.savez(path, meta=json.dumps({"taken_at": checkpoint.taken_at,
                                    "state": meta}),
             **arrays)


def load_checkpoint(path: str) -> SessionCheckpoint:
    """Read a checkpoint written by :func:`save_checkpoint`."""
    with np.load(path, allow_pickle=False) as archive:
        document = json.loads(str(archive["meta"]))
        state = document["state"]
        state["buffer"] = np.asarray(archive["buffer"], dtype=np.float64)
        state["latest_frame"] = (
            np.asarray(archive["latest_frame"], dtype=np.float32)
            if "latest_frame" in archive.files else None)
    return SessionCheckpoint(session_id=state["session_id"],
                             taken_at=float(document["taken_at"]),
                             state=state)


class CheckpointStore:
    """Latest-wins checkpoint registry with interval-driven refresh.

    Args:
        interval: simulation seconds between snapshots of one session
            (``due`` answers whether a session's snapshot has aged out).
        directory: when set, every checkpoint is also persisted as
            ``<directory>/<session_id>.npz`` and ``load_directory`` can
            rebuild the store after a process restart.
    """

    def __init__(self, *, interval: float = 1.0,
                 directory: str | None = None) -> None:
        if interval <= 0:
            raise ConfigurationError("checkpoint interval must be positive")
        self.interval = float(interval)
        self.directory = directory
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
        self._latest: dict[str, SessionCheckpoint] = {}
        self.taken = 0
        self.restored = 0

    # -- snapshot --------------------------------------------------------
    def due(self, session_id: str, now: float) -> bool:
        """Whether this session's checkpoint has aged past the interval."""
        checkpoint = self._latest.get(session_id)
        return checkpoint is None or now - checkpoint.taken_at >= self.interval

    def take(self, session: DriverSession, now: float) -> SessionCheckpoint:
        """Snapshot a live session (unconditionally; see :meth:`due`)."""
        checkpoint = SessionCheckpoint(session_id=session.session_id,
                                       taken_at=float(now),
                                       state=session.export_state())
        self._latest[session.session_id] = checkpoint
        self.taken += 1
        if self.directory is not None:
            save_checkpoint(self._path(session.session_id), checkpoint)
        return checkpoint

    def maybe_take(self, session: DriverSession,
                   now: float) -> SessionCheckpoint | None:
        """Snapshot only when the interval has elapsed."""
        if self.due(session.session_id, now):
            return self.take(session, now)
        return None

    # -- restore ---------------------------------------------------------
    def latest(self, session_id: str) -> SessionCheckpoint | None:
        """The most recent checkpoint for a session, if any."""
        return self._latest.get(session_id)

    def restore(self, session_id: str) -> DriverSession | None:
        """A fresh session restored from the latest checkpoint."""
        checkpoint = self._latest.get(session_id)
        if checkpoint is None:
            return None
        self.restored += 1
        return checkpoint.restore()

    def discard(self, session_id: str) -> None:
        """Forget a closed session's checkpoint (and its on-disk file)."""
        self._latest.pop(session_id, None)
        if self.directory is not None:
            try:
                os.remove(self._path(session_id))
            except OSError:
                pass

    @property
    def session_ids(self) -> list[str]:
        """Sessions with at least one checkpoint."""
        return sorted(self._latest)

    def load_directory(self) -> int:
        """Rebuild the in-memory store from persisted ``.npz`` files."""
        if self.directory is None:
            return 0
        loaded = 0
        for name in sorted(os.listdir(self.directory)):
            if not name.endswith(".npz"):
                continue
            checkpoint = load_checkpoint(os.path.join(self.directory, name))
            self._latest[checkpoint.session_id] = checkpoint
            loaded += 1
        return loaded

    def _path(self, session_id: str) -> str:
        return os.path.join(self.directory, f"{session_id}.npz")
