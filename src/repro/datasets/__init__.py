"""Synthetic dataset substrates.

Substitutes the paper's private recordings (see DESIGN.md §2): procedural
driver-scene frames, physics-guided IMU traces, the 18-class alternative
dataset for the privacy study, and the generic-shapes pretraining task
standing in for ImageNet initialization.
"""

from repro.datasets.classes import (
    IMU_ACTIVE_BEHAVIORS,
    NUM_BEHAVIOR_CLASSES,
    NUM_EXTENDED_CLASSES,
    NUM_EXTENDED_IMU_CLASSES,
    NUM_IMU_CLASSES,
    PAPER_FRAME_COUNTS,
    DrivingBehavior,
    ExtendedBehavior,
    ExtendedImuClass,
    ImuClass,
    as_behavior,
    behavior_names,
    imu_class_names,
    resolve_behavior,
    scaled_frame_counts,
    to_extended_imu_class,
    to_imu_class,
    to_paper_behavior,
)
from repro.datasets.imu_synth import (
    DEFAULT_SAMPLE_RATE_HZ,
    DEFAULT_WINDOW_STEPS,
    GRAVITY,
    SENSOR_ORDER,
    DriverProfile,
    ImuTraceGenerator,
    generate_imu_windows,
    standardize_windows,
)
from repro.datasets.image_synth import (
    DEFAULT_IMAGE_SIZE,
    POSES,
    DriverAppearance,
    PoseSpec,
    SceneRenderer,
    render_batch,
)
from repro.datasets.dataset import (
    DrivingDataset,
    generate_driving_dataset,
    summarize,
)
from repro.datasets.alternative import (
    ALTERNATIVE_POSES,
    NUM_ALTERNATIVE_CLASSES,
    NUM_ALTERNATIVE_DRIVERS,
    AlternativeDataset,
    class_names,
    generate_alternative_dataset,
)
from repro.datasets.pretraining import SHAPE_CLASSES, generate_pretraining_dataset
from repro.datasets.augment import (
    AugmentConfig,
    augment_batch,
    augmented_copies,
)
from repro.datasets.windows import (
    sliding_windows,
    window_labels,
    windows_from_stream,
)

__all__ = [
    "DrivingBehavior", "ImuClass", "to_imu_class", "behavior_names",
    "imu_class_names", "scaled_frame_counts", "NUM_BEHAVIOR_CLASSES",
    "NUM_IMU_CLASSES", "PAPER_FRAME_COUNTS", "IMU_ACTIVE_BEHAVIORS",
    "ExtendedBehavior", "ExtendedImuClass", "NUM_EXTENDED_CLASSES",
    "NUM_EXTENDED_IMU_CLASSES", "as_behavior", "resolve_behavior",
    "to_extended_imu_class", "to_paper_behavior",
    "ImuTraceGenerator", "DriverProfile", "generate_imu_windows",
    "standardize_windows", "GRAVITY", "SENSOR_ORDER", "DEFAULT_SAMPLE_RATE_HZ",
    "DEFAULT_WINDOW_STEPS", "SceneRenderer", "DriverAppearance", "PoseSpec",
    "POSES", "render_batch", "DEFAULT_IMAGE_SIZE", "DrivingDataset",
    "generate_driving_dataset", "summarize", "AlternativeDataset",
    "generate_alternative_dataset", "class_names", "ALTERNATIVE_POSES",
    "NUM_ALTERNATIVE_CLASSES", "NUM_ALTERNATIVE_DRIVERS", "SHAPE_CLASSES",
    "generate_pretraining_dataset", "sliding_windows", "window_labels",
    "windows_from_stream", "AugmentConfig", "augment_batch",
    "augmented_copies",
]
