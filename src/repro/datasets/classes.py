"""Driver-behaviour taxonomy (paper Table 1).

Six behaviour classes were collected with both an inward-facing camera and
the driver's phone.  Classes 4–6 (eating/drinking, hair and makeup,
reaching) "do not require cellphone use and thus are considered as 'Normal
Driving' for the IMU sequence data" — so the IMU modality has only three
effective classes, and the mapping between the two label spaces is a core
part of the ensemble.
"""

from __future__ import annotations

import enum

from repro.exceptions import ConfigurationError


class DrivingBehavior(enum.IntEnum):
    """The six behaviour classes of Table 1 (0-indexed; paper is 1-indexed)."""

    NORMAL = 0
    TALKING = 1
    TEXTING = 2
    EATING_DRINKING = 3
    HAIR_MAKEUP = 4
    REACHING = 5

    @property
    def paper_id(self) -> int:
        """The 1-indexed class number used in the paper's tables."""
        return int(self) + 1

    @property
    def display_name(self) -> str:
        """Human-readable name matching Table 1."""
        return _DISPLAY_NAMES[self]


_DISPLAY_NAMES = {
    DrivingBehavior.NORMAL: "Normal Driving",
    DrivingBehavior.TALKING: "Talking",
    DrivingBehavior.TEXTING: "Texting",
    DrivingBehavior.EATING_DRINKING: "Eating/Drinking",
    DrivingBehavior.HAIR_MAKEUP: "Hair and Makeup",
    DrivingBehavior.REACHING: "Reaching",
}

#: Number of image-modality classes.
NUM_BEHAVIOR_CLASSES = len(DrivingBehavior)

#: Frame counts collected per class in the paper (Table 1).
PAPER_FRAME_COUNTS = {
    DrivingBehavior.NORMAL: 5_286,
    DrivingBehavior.TALKING: 10_352,
    DrivingBehavior.TEXTING: 9_422,
    DrivingBehavior.EATING_DRINKING: 9_463,
    DrivingBehavior.HAIR_MAKEUP: 4_848,
    DrivingBehavior.REACHING: 17_709,
}

#: Classes for which real IMU data exists (phone in a distinctive pose).
IMU_ACTIVE_BEHAVIORS = (DrivingBehavior.TALKING, DrivingBehavior.TEXTING)


class ImuClass(enum.IntEnum):
    """Label space of the IMU modality (paper §5.1 phone orientations)."""

    NORMAL = 0
    TALKING = 1
    TEXTING = 2


NUM_IMU_CLASSES = len(ImuClass)


class ExtendedBehavior(enum.IntEnum):
    """The scenario DSL's label space: Table 1 plus DMS classes.

    Values 0–5 coincide with :class:`DrivingBehavior` (IntEnum members
    compare and hash by value, so the two spaces interoperate in dict
    lookups and equality checks).  The two extra classes come from the
    driver-monitoring taxonomies of the related work (drowsiness from the
    fatigue-detection literature, camera-covered from production DMS
    feature lists) — behaviours the paper never collected but a deployed
    monitor must answer for.
    """

    NORMAL = 0
    TALKING = 1
    TEXTING = 2
    EATING_DRINKING = 3
    HAIR_MAKEUP = 4
    REACHING = 5
    DROWSY = 6
    CAMERA_COVERED = 7

    @property
    def display_name(self) -> str:
        """Human-readable name (Table 1 names for the paper classes)."""
        if int(self) < NUM_BEHAVIOR_CLASSES:
            return _DISPLAY_NAMES[DrivingBehavior(int(self))]
        return _EXTENDED_DISPLAY_NAMES[self]

    @property
    def is_paper_class(self) -> bool:
        """Whether this class exists in the paper's 6-way space."""
        return int(self) < NUM_BEHAVIOR_CLASSES


_EXTENDED_DISPLAY_NAMES = {
    ExtendedBehavior.DROWSY: "Drowsy Driving",
    ExtendedBehavior.CAMERA_COVERED: "Camera Covered",
}

NUM_EXTENDED_CLASSES = len(ExtendedBehavior)


class ExtendedImuClass(enum.IntEnum):
    """IMU label space of the extended taxonomy.

    The three paper orientations plus drowsiness: the phone stays in the
    pocket, but the *vehicle* signature changes — slow lane-weave
    oscillation punctuated by correction jerks.  Camera-covered has no
    IMU signature at all (the phone rides in the normal pocket pose), so
    it maps to ``NORMAL`` like the paper's non-phone classes.
    """

    NORMAL = 0
    TALKING = 1
    TEXTING = 2
    DROWSY = 3


NUM_EXTENDED_IMU_CLASSES = len(ExtendedImuClass)


def to_imu_class(behavior: DrivingBehavior | int) -> ImuClass:
    """Map a behaviour class to its IMU-modality label.

    Every non-phone behaviour maps to ``ImuClass.NORMAL`` because the phone
    sits in the driver's pocket in the "Normal Driving" position (Table 1).
    """
    behavior = DrivingBehavior(behavior)
    if behavior == DrivingBehavior.TALKING:
        return ImuClass.TALKING
    if behavior == DrivingBehavior.TEXTING:
        return ImuClass.TEXTING
    return ImuClass.NORMAL


def as_behavior(value: int) -> DrivingBehavior | ExtendedBehavior:
    """The enum member for a class index in either label space.

    Paper classes come back as :class:`DrivingBehavior` (so existing
    equality/identity checks keep working), extended classes as
    :class:`ExtendedBehavior`.
    """
    value = int(value)
    if value < NUM_BEHAVIOR_CLASSES:
        return DrivingBehavior(value)
    return ExtendedBehavior(value)


def resolve_behavior(name: str) -> DrivingBehavior | ExtendedBehavior:
    """Look up a behaviour by enum name (the scenario specs' JSON form)."""
    try:
        return as_behavior(int(ExtendedBehavior[name.upper()]))
    except KeyError:
        raise ConfigurationError(
            f"unknown behaviour {name!r}; choose from "
            f"{[b.name for b in ExtendedBehavior]}") from None


def to_extended_imu_class(behavior: int) -> ExtendedImuClass:
    """Map an extended behaviour class to its IMU-modality label.

    Paper classes follow :func:`to_imu_class`; ``DROWSY`` carries its own
    vehicle-dynamics signature, and ``CAMERA_COVERED`` is IMU-normal.
    """
    value = int(behavior)
    if value == ExtendedBehavior.DROWSY:
        return ExtendedImuClass.DROWSY
    if value == ExtendedBehavior.CAMERA_COVERED:
        return ExtendedImuClass.NORMAL
    return ExtendedImuClass(int(to_imu_class(DrivingBehavior(value))))


def to_paper_behavior(behavior: int) -> DrivingBehavior:
    """Project an extended class down onto the paper's 6-way space.

    The paper space has no concept of drowsiness or a covered camera;
    both project to ``NORMAL`` (no *distraction gesture* is in progress),
    which is exactly how a 6-class-only consumer — the legacy ensemble,
    a distilled dCNN on the privacy ladder — would read those drives.
    """
    value = int(behavior)
    if value < NUM_BEHAVIOR_CLASSES:
        return DrivingBehavior(value)
    return DrivingBehavior.NORMAL


def behavior_names() -> list[str]:
    """Display names ordered by class index."""
    return [behavior.display_name for behavior in DrivingBehavior]


def imu_class_names() -> list[str]:
    """IMU label names ordered by class index."""
    return [cls.name.title() for cls in ImuClass]


def scaled_frame_counts(total: int) -> dict[DrivingBehavior, int]:
    """Scale the paper's per-class frame counts to a target total.

    Preserves Table 1's class imbalance (reaching is ~3.6x normal driving)
    at laptop scale.  Every class gets at least one frame.
    """
    if total <= 0:
        raise ConfigurationError(f"total must be positive, got {total}")
    paper_total = sum(PAPER_FRAME_COUNTS.values())
    counts = {
        behavior: max(1, round(total * paper_count / paper_total))
        for behavior, paper_count in PAPER_FRAME_COUNTS.items()
    }
    return counts
