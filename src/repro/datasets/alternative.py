"""The 18-class "alternative" distracted-driver dataset.

The dCNN privacy study (paper §5.3) was evaluated on "a previously
collected distracted driver dataset [that] consists of 18 classes, and was
collected from a total of 10 drivers" with a GoPro.  We synthesize an
equivalent: 18 pose classes built by refining the 6 base behaviours with
hand/side/height variants, rendered for 10 participants.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.classes import DrivingBehavior
from repro.datasets.image_synth import (
    DEFAULT_IMAGE_SIZE,
    DriverAppearance,
    PoseSpec,
    SceneRenderer,
)
from repro.exceptions import ConfigurationError

NUM_ALTERNATIVE_CLASSES = 18
NUM_ALTERNATIVE_DRIVERS = 10


def _pose(left, right, obj_size, obj_tone, obj_hand, tilt=0.0, lean=0.0
          ) -> PoseSpec:
    return PoseSpec(left_hand=left, right_hand=right, object_size=obj_size,
                    object_tone=obj_tone, object_hand=obj_hand,
                    head_tilt=tilt, torso_lean=lean)


#: 18 fine-grained pose classes: base behaviour refined by hand/height/side.
ALTERNATIVE_POSES: dict[int, tuple[str, DrivingBehavior, PoseSpec]] = {
    0: ("normal both hands", DrivingBehavior.NORMAL,
        _pose(None, None, 0.0, 0.0, "none")),
    1: ("normal one hand", DrivingBehavior.NORMAL,
        _pose(None, (0.60, 0.60), 0.0, 0.0, "none")),
    2: ("talking right ear", DrivingBehavior.TALKING,
        _pose(None, (0.33, 0.52), 0.025, 0.92, "right")),
    3: ("talking left ear", DrivingBehavior.TALKING,
        _pose((0.33, 0.33), None, 0.025, 0.92, "left")),
    4: ("texting right low", DrivingBehavior.TEXTING,
        _pose(None, (0.62, 0.47), 0.025, 0.92, "right", tilt=0.05)),
    5: ("texting right high", DrivingBehavior.TEXTING,
        _pose(None, (0.50, 0.48), 0.025, 0.92, "right", tilt=0.03)),
    6: ("texting left low", DrivingBehavior.TEXTING,
        _pose((0.62, 0.37), None, 0.025, 0.92, "left", tilt=0.05)),
    7: ("texting two hands", DrivingBehavior.TEXTING,
        _pose((0.60, 0.40), (0.60, 0.47), 0.030, 0.92, "right", tilt=0.06)),
    8: ("drinking cup", DrivingBehavior.EATING_DRINKING,
        _pose(None, (0.36, 0.46), 0.055, 0.85, "right")),
    9: ("eating food", DrivingBehavior.EATING_DRINKING,
        _pose(None, (0.34, 0.44), 0.045, 0.70, "right", tilt=0.02)),
    10: ("drinking left", DrivingBehavior.EATING_DRINKING,
         _pose((0.36, 0.38), None, 0.055, 0.85, "left")),
    11: ("hair both hands", DrivingBehavior.HAIR_MAKEUP,
         _pose((0.20, 0.36), (0.19, 0.49), 0.02, 0.75, "right", tilt=-0.02)),
    12: ("makeup mirror", DrivingBehavior.HAIR_MAKEUP,
         _pose(None, (0.24, 0.50), 0.035, 0.95, "right", tilt=-0.01)),
    13: ("reaching right", DrivingBehavior.REACHING,
         _pose(None, (0.52, 0.88), 0.0, 0.0, "none", tilt=0.03, lean=0.10)),
    14: ("reaching down", DrivingBehavior.REACHING,
         _pose(None, (0.85, 0.60), 0.0, 0.0, "none", tilt=0.06, lean=0.04)),
    15: ("reaching back", DrivingBehavior.REACHING,
         _pose(None, (0.30, 0.85), 0.0, 0.0, "none", tilt=0.02, lean=0.12)),
    16: ("radio adjust", DrivingBehavior.REACHING,
         _pose(None, (0.68, 0.70), 0.0, 0.0, "none", tilt=0.04, lean=0.05)),
    17: ("passenger talk", DrivingBehavior.TALKING,
         _pose(None, None, 0.0, 0.0, "none", tilt=-0.03, lean=0.06)),
}


@dataclass
class AlternativeDataset:
    """18-class image-only dataset (no IMU — GoPro footage in the paper)."""

    images: np.ndarray
    labels: np.ndarray
    drivers: np.ndarray

    def __len__(self) -> int:
        return int(self.labels.shape[0])

    def subset(self, indices: np.ndarray) -> "AlternativeDataset":
        indices = np.asarray(indices)
        return AlternativeDataset(self.images[indices], self.labels[indices],
                                  self.drivers[indices])

    def train_eval_split(self, train_fraction: float = 0.8, *,
                         rng: np.random.Generator | None = None
                         ) -> tuple["AlternativeDataset", "AlternativeDataset"]:
        """Stratified shuffled split."""
        rng = rng or np.random.default_rng()
        train_idx: list[int] = []
        eval_idx: list[int] = []
        for class_id in range(NUM_ALTERNATIVE_CLASSES):
            members = np.flatnonzero(self.labels == class_id)
            rng.shuffle(members)
            cut = int(round(len(members) * train_fraction))
            train_idx.extend(members[:cut])
            eval_idx.extend(members[cut:])
        return (self.subset(np.array(sorted(train_idx), dtype=np.int64)),
                self.subset(np.array(sorted(eval_idx), dtype=np.int64)))


def class_names() -> list[str]:
    """Readable names of the 18 alternative classes."""
    return [ALTERNATIVE_POSES[i][0] for i in range(NUM_ALTERNATIVE_CLASSES)]


def generate_alternative_dataset(samples_per_class: int = 40, *,
                                 num_drivers: int = NUM_ALTERNATIVE_DRIVERS,
                                 image_size: int = DEFAULT_IMAGE_SIZE,
                                 noise_std: float = 0.06,
                                 rng: np.random.Generator | None = None
                                 ) -> AlternativeDataset:
    """Render the 18-class dataset across ``num_drivers`` participants.

    Noise and lighting variation are higher than in the 6-class dataset:
    the paper's alternative dataset is GoPro footage "under varying
    degrees of lighting", and its 18 fine-grained poses drive the baseline
    CNN to ~79% — the modestly-overfit regime in which the dCNN-L
    regularization anomaly (Table 3) appears.
    """
    if samples_per_class <= 0:
        raise ConfigurationError("samples_per_class must be positive")
    rng = rng or np.random.default_rng()
    appearances = [DriverAppearance.sample(d, rng) for d in range(num_drivers)]
    renderers = [SceneRenderer(app, size=image_size, noise_std=noise_std,
                               lighting_range=(0.45, 1.2))
                 for app in appearances]
    total = samples_per_class * NUM_ALTERNATIVE_CLASSES
    images = np.empty((total, 1, image_size, image_size), dtype=np.float32)
    labels = np.empty(total, dtype=np.int64)
    drivers = np.empty(total, dtype=np.int64)
    index = 0
    for class_id in range(NUM_ALTERNATIVE_CLASSES):
        _, base_behavior, pose = ALTERNATIVE_POSES[class_id]
        for _ in range(samples_per_class):
            driver = int(rng.integers(0, num_drivers))
            images[index, 0] = renderers[driver].render(
                base_behavior, rng=rng, pose=pose)
            labels[index] = class_id
            drivers[index] = driver
            index += 1
    order = rng.permutation(total)
    return AlternativeDataset(images[order], labels[order], drivers[order])
