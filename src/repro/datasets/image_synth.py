"""Procedural driver-scene renderer.

Substitutes the paper's private dashcam footage with a parametric 2-D
"cabin scene": seat background, steering wheel, driver torso/head/arms,
and a hand-held object, composed per behaviour class.  The geometry is
chosen so the *confusion structure* matches what the paper reports for its
CNN (Fig. 5c):

* Texting, talking, and normal driving differ only in one arm's pose and a
  few-pixel phone blob — under lighting variation, pose jitter, and sensor
  noise these classes are genuinely hard for a frame-only classifier.
* Eating/drinking, hair-and-makeup, and reaching carry large distinctive
  geometry (big object at the mouth, both arms raised, full arm extension)
  and remain recognizable from frames alone.

Frames are float32 grayscale in [0, 1], NCHW-ready via ``frame[None]``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.classes import DrivingBehavior, ExtendedBehavior, as_behavior
from repro.exceptions import ConfigurationError

DEFAULT_IMAGE_SIZE = 64


@dataclass(frozen=True)
class DriverAppearance:
    """Per-driver rendering parameters (body build, clothing, seat position)."""

    driver_id: int
    seat_dx: float       # horizontal seat offset, fraction of width
    seat_dy: float       # vertical seat offset
    scale: float         # body size multiplier
    skin_tone: float     # head/hand intensity
    shirt_tone: float    # torso intensity

    @classmethod
    def sample(cls, driver_id: int, rng: np.random.Generator
               ) -> "DriverAppearance":
        """Draw a random participant."""
        return cls(
            driver_id=driver_id,
            seat_dx=float(rng.uniform(-0.04, 0.04)),
            seat_dy=float(rng.uniform(-0.03, 0.03)),
            scale=float(rng.uniform(0.9, 1.1)),
            skin_tone=float(rng.uniform(0.72, 0.95)),
            shirt_tone=float(rng.uniform(0.35, 0.6)),
        )


def _grids(size: int) -> tuple[np.ndarray, np.ndarray]:
    coords = (np.arange(size) + 0.5) / size
    return np.meshgrid(coords, coords, indexing="ij")  # (yy, xx)


def _composite(canvas: np.ndarray, alpha: np.ndarray, tone: float) -> None:
    np.copyto(canvas, canvas * (1.0 - alpha) + tone * alpha)


def _disk(canvas: np.ndarray, yy: np.ndarray, xx: np.ndarray, cy: float,
          cx: float, radius: float, tone: float, soft: float = 0.008) -> None:
    dist = np.sqrt((yy - cy) ** 2 + (xx - cx) ** 2)
    alpha = np.clip((radius - dist) / soft, 0.0, 1.0)
    _composite(canvas, alpha, tone)


def _ellipse(canvas: np.ndarray, yy: np.ndarray, xx: np.ndarray, cy: float,
             cx: float, ry: float, rx: float, tone: float,
             soft: float = 0.01) -> None:
    dist = np.sqrt(((yy - cy) / ry) ** 2 + ((xx - cx) / rx) ** 2)
    alpha = np.clip((1.0 - dist) * min(ry, rx) / soft, 0.0, 1.0)
    _composite(canvas, alpha, tone)


def _capsule(canvas: np.ndarray, yy: np.ndarray, xx: np.ndarray,
             p0: tuple[float, float], p1: tuple[float, float], radius: float,
             tone: float, soft: float = 0.008) -> None:
    """Soft line segment with round caps (arms, wheel spokes)."""
    ay, ax = p0
    by, bx = p1
    aby, abx = by - ay, bx - ax
    denom = max(aby * aby + abx * abx, 1e-9)
    t = np.clip(((yy - ay) * aby + (xx - ax) * abx) / denom, 0.0, 1.0)
    dist = np.sqrt((yy - (ay + t * aby)) ** 2 + (xx - (ax + t * abx)) ** 2)
    alpha = np.clip((radius - dist) / soft, 0.0, 1.0)
    _composite(canvas, alpha, tone)


def _ring(canvas: np.ndarray, yy: np.ndarray, xx: np.ndarray, cy: float,
          cx: float, radius: float, thickness: float, tone: float) -> None:
    dist = np.sqrt((yy - cy) ** 2 + (xx - cx) ** 2)
    alpha = np.clip((thickness - np.abs(dist - radius)) / 0.008, 0.0, 1.0)
    _composite(canvas, alpha, tone)


#: Arm-elevation waypoints for the phone-hand continuum: wheel -> waist ->
#: chest -> ear.  The right hand of the three phone-related classes moves
#: along this curve; class identity only shifts the *distribution* over the
#: elevation parameter, so neighbouring classes genuinely overlap.
_ARM_PATH = np.array([
    [0.72, 0.42],   # lambda=0.00: resting on the wheel rim
    [0.62, 0.47],   # lambda=0.35: waist level (phone below the dash)
    [0.47, 0.50],   # lambda=0.65: chest level
    [0.33, 0.52],   # lambda=1.00: at the ear
])
_ARM_LAMBDAS = np.array([0.0, 0.35, 0.65, 1.0])

#: Class-conditional elevation ranges for *active* frames.  Texting's
#: visible hold (chest-low) overlaps talking's lower range, so even active
#: frames of the two phone classes are partially confusable.
_ELEVATION_RANGES = {
    DrivingBehavior.NORMAL: (0.0, 0.30),
    DrivingBehavior.TEXTING: (0.38, 0.60),
    DrivingBehavior.TALKING: (0.50, 1.0),
}

#: The phone blob is only drawn when the hand clears the dash line.
_PHONE_VISIBLE_ABOVE = 0.40

#: Probability that a frame of each distraction class captures a moment
#: where the driver's hand is back on/near the wheel — visually a *normal
#: driving* frame, but labelled with the scripted distraction.  Real
#: scripted segments contain exactly these transition frames, and they are
#: what makes normal driving the attractor class: "all three models output
#: a high number of false positives when predicting normal driving" and
#: texting collapses to 36% CNN accuracy (paper §5.2).  The IMU modality
#: still sees the phone hold for texting/talking, so the ensemble recovers
#: those — but not eating/makeup/reaching, whose IMU signature *is* normal.
_NORMAL_MIMIC_PROBABILITY = {
    DrivingBehavior.TEXTING: 0.50,
    DrivingBehavior.TALKING: 0.20,
    DrivingBehavior.REACHING: 0.12,
    DrivingBehavior.EATING_DRINKING: 0.05,
    DrivingBehavior.HAIR_MAKEUP: 0.05,
    # Drowsy drivers intermittently rouse and sit upright — those frames
    # render as normal driving, so the class is not trivially separable.
    ExtendedBehavior.DROWSY: 0.10,
}


def _arm_point(elevation: float) -> tuple[float, float]:
    """Interpolate the hand position along the arm path."""
    y = float(np.interp(elevation, _ARM_LAMBDAS, _ARM_PATH[:, 0]))
    x = float(np.interp(elevation, _ARM_LAMBDAS, _ARM_PATH[:, 1]))
    return y, x


@dataclass(frozen=True)
class PoseSpec:
    """Scene parameters for one behaviour class.

    Hand positions are fractions of the canvas relative to the body anchor;
    ``None`` means the hand rests on the steering wheel.
    """

    left_hand: tuple[float, float] | None
    right_hand: tuple[float, float] | None
    object_size: float          # radius of the held object (0 = none)
    object_tone: float
    object_hand: str            # "left" / "right" / "none"
    head_tilt: float            # head offset, + = toward wheel
    torso_lean: float           # torso horizontal lean


# Scene anchors (fractions of the canvas). The driver sits center-left,
# wheel at bottom-left, passenger side at the right edge.
_HEAD = (0.28, 0.42)
_SHOULDER_L = (0.46, 0.30)
_SHOULDER_R = (0.46, 0.56)
_WHEEL = (0.78, 0.28)

POSES: dict[DrivingBehavior, PoseSpec] = {
    DrivingBehavior.NORMAL: PoseSpec(
        left_hand=None, right_hand=None, object_size=0.0, object_tone=0.0,
        object_hand="none", head_tilt=0.0, torso_lean=0.0),
    DrivingBehavior.TALKING: PoseSpec(
        left_hand=None, right_hand=(0.33, 0.52), object_size=0.02,
        object_tone=0.85, object_hand="right", head_tilt=0.01,
        torso_lean=0.0),
    DrivingBehavior.TEXTING: PoseSpec(
        left_hand=None, right_hand=(0.60, 0.47), object_size=0.02,
        object_tone=0.85, object_hand="right", head_tilt=0.03,
        torso_lean=0.0),
    DrivingBehavior.EATING_DRINKING: PoseSpec(
        left_hand=None, right_hand=(0.34, 0.44), object_size=0.062,
        object_tone=0.97, object_hand="right", head_tilt=0.02,
        torso_lean=0.0),
    DrivingBehavior.HAIR_MAKEUP: PoseSpec(
        left_hand=(0.20, 0.36), right_hand=(0.19, 0.49), object_size=0.02,
        object_tone=0.75, object_hand="right", head_tilt=-0.02,
        torso_lean=0.0),
    DrivingBehavior.REACHING: PoseSpec(
        left_hand=None, right_hand=(0.52, 0.88), object_size=0.0,
        object_tone=0.0, object_hand="none", head_tilt=0.03,
        torso_lean=0.10),
    # Extended (non-paper) class: head drooped toward the wheel with both
    # hands resting on it — only the head/torso geometry separates it from
    # normal driving, so the CNN has to key on posture, not props.
    ExtendedBehavior.DROWSY: PoseSpec(
        left_hand=None, right_hand=None, object_size=0.0, object_tone=0.0,
        object_hand="none", head_tilt=0.075, torso_lean=0.04),
}


class SceneRenderer:
    """Renders driver frames for one participant.

    Args:
        appearance: per-driver body/clothing parameters.
        size: square canvas resolution (paper frames are 300x300; we use
            64x64, preserving the downsampling *ratios* in the privacy
            experiments).
        noise_std: additive sensor noise.
        lighting_range: per-frame global illumination multiplier range —
            "drove under varying degrees of lighting" (§5.1).
    """

    def __init__(self, appearance: DriverAppearance | None = None, *,
                 size: int = DEFAULT_IMAGE_SIZE, noise_std: float = 0.05,
                 lighting_range: tuple[float, float] = (0.5, 1.2)) -> None:
        if size < 16:
            raise ConfigurationError(f"image size too small: {size}")
        self.appearance = appearance or DriverAppearance(0, 0.0, 0.0, 1.0,
                                                         0.85, 0.5)
        self.size = int(size)
        self.noise_std = float(noise_std)
        self.lighting_range = lighting_range
        self._yy, self._xx = _grids(self.size)

    def render(self, behavior: DrivingBehavior | int, *,
               rng: np.random.Generator | None = None,
               pose_jitter: float = 0.015,
               pose: PoseSpec | None = None) -> np.ndarray:
        """Render one frame of ``behavior``; returns (size, size) float32."""
        rng = rng or np.random.default_rng()
        behavior = as_behavior(int(behavior))
        if behavior == ExtendedBehavior.CAMERA_COVERED:
            return self._render_covered(rng)
        spec = pose or POSES[behavior]
        # Transition frames: the hand is momentarily back on/near the
        # wheel, so the frame renders as normal driving regardless of the
        # scripted label.  Explicit poses (the 18-class dataset) skip this.
        elevation = None
        if pose is None:
            mimic_p = _NORMAL_MIMIC_PROBABILITY.get(behavior, 0.0)
            if rng.random() < mimic_p:
                spec = POSES[DrivingBehavior.NORMAL]
                low, high = _ELEVATION_RANGES[DrivingBehavior.NORMAL]
                elevation = float(rng.uniform(low, high))
            elif behavior in _ELEVATION_RANGES:
                low, high = _ELEVATION_RANGES[behavior]
                elevation = float(rng.uniform(low, high))
        app = self.appearance
        yy, xx = self._yy, self._xx

        def jit() -> float:
            return float(rng.normal(0.0, pose_jitter))

        dx = app.seat_dx + jit()
        dy = app.seat_dy + jit()
        scale = app.scale * (1.0 + 0.3 * jit())
        canvas = np.zeros((self.size, self.size), dtype=np.float64)
        # Cabin background: vertical gradient + bright side window.
        canvas += 0.16 + 0.10 * yy
        window_alpha = np.clip((xx - 0.78) / 0.22, 0.0, 1.0) * \
            np.clip((0.45 - yy) / 0.45, 0.0, 1.0)
        _composite(canvas, 0.8 * window_alpha, 0.55)
        # Steering wheel.
        wheel = (_WHEEL[0] + dy, _WHEEL[1] + dx)
        _ring(canvas, yy, xx, wheel[0], wheel[1], 0.16 * scale, 0.016, 0.12)
        # Torso and head.
        lean = spec.torso_lean
        torso = (0.62 + dy, 0.42 + dx + lean)
        _ellipse(canvas, yy, xx, torso[0], torso[1], 0.26 * scale,
                 0.19 * scale, app.shirt_tone)
        head = (_HEAD[0] + dy + spec.head_tilt, _HEAD[1] + dx + 0.6 * lean)
        _disk(canvas, yy, xx, head[0], head[1], 0.085 * scale, app.skin_tone)
        # Arms: shoulder -> hand capsules.
        hands: dict[str, tuple[float, float]] = {}
        right_target = spec.right_hand
        if elevation is not None:
            right_target = _arm_point(elevation) if elevation > 0.02 else None
        for side, shoulder, target in (
                ("left", _SHOULDER_L, spec.left_hand),
                ("right", _SHOULDER_R, right_target)):
            sy, sx = shoulder[0] + dy, shoulder[1] + dx + lean
            if target is None:
                # Hand on the wheel rim.
                angle = -0.6 if side == "left" else 0.7
                hy = wheel[0] - 0.16 * scale * np.cos(angle)
                hx = wheel[1] + 0.16 * scale * np.sin(angle)
            else:
                hy = target[0] + dy + jit()
                hx = target[1] + dx + jit()
            hands[side] = (hy, hx)
            _capsule(canvas, yy, xx, (sy, sx), (hy, hx), 0.035 * scale,
                     app.shirt_tone * 1.1)
            _disk(canvas, yy, xx, hy, hx, 0.032 * scale, app.skin_tone)
        # Held object (phone / cup / brush).  On the elevation continuum
        # the phone is only visible once the hand clears the dash line.
        phone_visible = (elevation is None
                         or elevation > _PHONE_VISIBLE_ABOVE)
        if spec.object_hand != "none" and spec.object_size > 0 and phone_visible:
            hy, hx = hands[spec.object_hand]
            _disk(canvas, yy, xx, hy - 0.01, hx + 0.015,
                  spec.object_size * scale, spec.object_tone)
        # Global illumination and sensor noise.
        lighting = rng.uniform(*self.lighting_range)
        canvas = canvas * lighting
        if self.noise_std:
            canvas = canvas + rng.normal(0.0, self.noise_std, canvas.shape)
        return np.clip(canvas, 0.0, 1.0).astype(np.float32)

    def _render_covered(self, rng: np.random.Generator) -> np.ndarray:
        """Occluded-lens frame: near-black with a faint smudge highlight.

        What an inward camera sees when taped over or blocked by an object
        pressed against the lens — almost no scene signal, just sensor
        floor noise and a soft bloom where stray light leaks past the
        obstruction.
        """
        yy, xx = self._yy, self._xx
        base = 0.02 + 0.03 * float(rng.random())
        canvas = np.full((self.size, self.size), base, dtype=np.float64)
        cy, cx = rng.uniform(0.2, 0.8, 2)
        canvas = canvas + 0.06 * np.exp(
            -((yy - cy) ** 2 + (xx - cx) ** 2) / 0.08)
        if self.noise_std:
            canvas = canvas + rng.normal(0.0, 0.4 * self.noise_std,
                                         canvas.shape)
        return np.clip(canvas, 0.0, 1.0).astype(np.float32)

    def frame_fn(self, behavior_at: "callable", *,
                 rng: np.random.Generator | None = None):
        """Streaming adapter: ``t -> frame`` with behaviour from a schedule.

        ``behavior_at(t)`` returns the active class at simulation time t.
        """
        rng = rng or np.random.default_rng()

        def frame(t: float) -> np.ndarray:
            return self.render(behavior_at(t), rng=rng)

        return frame


def render_batch(behaviors: np.ndarray, *, size: int = DEFAULT_IMAGE_SIZE,
                 appearances: list[DriverAppearance] | None = None,
                 driver_ids: np.ndarray | None = None,
                 rng: np.random.Generator | None = None) -> np.ndarray:
    """Render a batch of frames: returns NCHW (n, 1, size, size) float32.

    Args:
        behaviors: per-frame class labels.
        appearances: participant pool; frames pick via ``driver_ids``.
        driver_ids: per-frame participant index (default all zeros).
        rng: randomness for pose jitter, lighting, noise.
    """
    rng = rng or np.random.default_rng()
    behaviors = np.asarray(behaviors, dtype=np.int64)
    if appearances is None:
        appearances = [DriverAppearance.sample(0, rng)]
    if driver_ids is None:
        driver_ids = np.zeros(len(behaviors), dtype=np.int64)
    renderers = [SceneRenderer(app, size=size) for app in appearances]
    frames = np.empty((len(behaviors), 1, size, size), dtype=np.float32)
    for i, (behavior, driver) in enumerate(zip(behaviors, driver_ids)):
        frames[i, 0] = renderers[int(driver)].render(int(behavior), rng=rng)
    return frames
