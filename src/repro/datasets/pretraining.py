"""Generic-shapes pretraining task.

Stands in for the ImageNet checkpoint the paper fine-tunes from: the
MicroInception CNN is first trained on an unrelated synthetic
shape-classification task so its early layers learn generic edge/blob
features, then the classifier head is swapped and the network fine-tuned
on driving frames — the same *methodology* as initializing Inception-V3
from the ILSVRC-2012 weights (paper §4.2) at laptop scale.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.image_synth import DEFAULT_IMAGE_SIZE, _grids
from repro.exceptions import ConfigurationError

SHAPE_CLASSES = (
    "disk", "ring", "square", "cross", "hbar", "vbar", "diagonal", "dots",
)


def _render_shape(kind: str, yy: np.ndarray, xx: np.ndarray,
                  rng: np.random.Generator) -> np.ndarray:
    cy, cx = rng.uniform(0.3, 0.7, 2)
    size = rng.uniform(0.12, 0.28)
    tone = rng.uniform(0.6, 1.0)
    canvas = np.full(yy.shape, rng.uniform(0.05, 0.25))
    dist = np.sqrt((yy - cy) ** 2 + (xx - cx) ** 2)
    if kind == "disk":
        mask = dist < size
    elif kind == "ring":
        mask = np.abs(dist - size) < size * 0.3
    elif kind == "square":
        mask = (np.abs(yy - cy) < size) & (np.abs(xx - cx) < size)
    elif kind == "cross":
        mask = ((np.abs(yy - cy) < size * 0.25) & (np.abs(xx - cx) < size)) | \
               ((np.abs(xx - cx) < size * 0.25) & (np.abs(yy - cy) < size))
    elif kind == "hbar":
        mask = (np.abs(yy - cy) < size * 0.3) & (np.abs(xx - cx) < size * 1.4)
    elif kind == "vbar":
        mask = (np.abs(xx - cx) < size * 0.3) & (np.abs(yy - cy) < size * 1.4)
    elif kind == "diagonal":
        mask = np.abs((yy - cy) - (xx - cx)) < size * 0.35
        mask &= (np.abs(yy - cy) < size * 1.2)
    elif kind == "dots":
        mask = np.zeros_like(yy, dtype=bool)
        for _ in range(4):
            dy, dx = rng.uniform(-size, size, 2)
            mask |= np.sqrt((yy - cy - dy) ** 2 + (xx - cx - dx) ** 2) < size * 0.22
    else:
        raise ConfigurationError(f"unknown shape {kind!r}")
    canvas[mask] = tone
    return canvas


def generate_pretraining_dataset(samples_per_class: int = 60, *,
                                 size: int = DEFAULT_IMAGE_SIZE,
                                 noise_std: float = 0.05,
                                 rng: np.random.Generator | None = None
                                 ) -> tuple[np.ndarray, np.ndarray]:
    """Synthesize the shapes task: (images NCHW, labels).

    Args:
        samples_per_class: examples per shape class.
        size: square image resolution (match the driving frames).
        noise_std: additive Gaussian noise.
        rng: randomness source.
    """
    if samples_per_class <= 0:
        raise ConfigurationError("samples_per_class must be positive")
    rng = rng or np.random.default_rng()
    yy, xx = _grids(size)
    total = samples_per_class * len(SHAPE_CLASSES)
    images = np.empty((total, 1, size, size), dtype=np.float32)
    labels = np.empty(total, dtype=np.int64)
    index = 0
    for class_id, kind in enumerate(SHAPE_CLASSES):
        for _ in range(samples_per_class):
            frame = _render_shape(kind, yy, xx, rng)
            frame = frame + rng.normal(0.0, noise_std, frame.shape)
            images[index, 0] = np.clip(frame, 0.0, 1.0)
            labels[index] = class_id
            index += 1
    order = rng.permutation(total)
    return images[order], labels[order]
