"""Paired multimodal dataset containers and generation.

The evaluation unit in DarNet is a *time step*: one camera frame plus the
20-step IMU window ending at the same instant.  :class:`DrivingDataset`
stores these paired samples with behaviour labels and driver identities,
and supports the paper's 80/20 train/eval partition (§5.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.classes import (
    NUM_BEHAVIOR_CLASSES,
    DrivingBehavior,
    as_behavior,
    scaled_frame_counts,
    to_extended_imu_class,
    to_imu_class,
)
from repro.datasets.image_synth import (
    DEFAULT_IMAGE_SIZE,
    DriverAppearance,
    SceneRenderer,
)
from repro.datasets.imu_synth import (
    DEFAULT_WINDOW_STEPS,
    DriverProfile,
    ImuTraceGenerator,
)
from repro.exceptions import ConfigurationError, ShapeError


@dataclass
class DrivingDataset:
    """Aligned multimodal samples.

    Attributes:
        images: (n, 1, h, w) float32 frames.
        imu: (n, steps, 12) float32 IMU windows.
        labels: (n,) behaviour classes (6-way by default).
        drivers: (n,) participant ids.
        num_classes: size of the behaviour label space.  6 for paper
            datasets; 8 for scenario-DSL datasets carrying the extended
            DMS classes.
    """

    images: np.ndarray
    imu: np.ndarray
    labels: np.ndarray
    drivers: np.ndarray
    num_classes: int = NUM_BEHAVIOR_CLASSES

    def __post_init__(self) -> None:
        n = self.labels.shape[0]
        if not (self.images.shape[0] == self.imu.shape[0]
                == self.drivers.shape[0] == n):
            raise ShapeError(
                "images, imu, labels, drivers must share the sample axis: "
                f"{self.images.shape[0]}, {self.imu.shape[0]}, {n}, "
                f"{self.drivers.shape[0]}"
            )

    def __len__(self) -> int:
        return int(self.labels.shape[0])

    @property
    def imu_labels(self) -> np.ndarray:
        """IMU-modality labels derived from the behaviour labels.

        3-way for paper datasets, 4-way (adds DROWSY) when the label space
        is extended — each label maps through the taxonomy's behaviour →
        IMU projection.
        """
        if self.num_classes > NUM_BEHAVIOR_CLASSES:
            return np.array(
                [int(to_extended_imu_class(int(label)))
                 for label in self.labels], dtype=np.int64)
        return np.array([int(to_imu_class(int(label))) for label in self.labels],
                        dtype=np.int64)

    def class_counts(self) -> dict[DrivingBehavior, int]:
        """Samples per behaviour class (Table 1's Frame Count column)."""
        return {
            as_behavior(value): int(np.sum(self.labels == value))
            for value in range(self.num_classes)
        }

    def subset(self, indices: np.ndarray) -> "DrivingDataset":
        """Dataset restricted to ``indices`` (copying)."""
        indices = np.asarray(indices)
        return DrivingDataset(
            images=self.images[indices],
            imu=self.imu[indices],
            labels=self.labels[indices],
            drivers=self.drivers[indices],
            num_classes=self.num_classes,
        )

    def train_eval_split(self, train_fraction: float = 0.8, *,
                         rng: np.random.Generator | None = None,
                         stratified: bool = True
                         ) -> tuple["DrivingDataset", "DrivingDataset"]:
        """Shuffled 80/20 partition (paper §5.1), stratified per class."""
        if not 0.0 < train_fraction < 1.0:
            raise ConfigurationError(
                f"train fraction must be in (0, 1), got {train_fraction}"
            )
        rng = rng or np.random.default_rng()
        n = len(self)
        if stratified:
            train_idx: list[int] = []
            eval_idx: list[int] = []
            for value in range(self.num_classes):
                members = np.flatnonzero(self.labels == value)
                rng.shuffle(members)
                cut = int(round(len(members) * train_fraction))
                train_idx.extend(members[:cut])
                eval_idx.extend(members[cut:])
            train = np.array(sorted(train_idx))
            evaluation = np.array(sorted(eval_idx))
        else:
            order = rng.permutation(n)
            cut = int(round(n * train_fraction))
            train, evaluation = np.sort(order[:cut]), np.sort(order[cut:])
        return self.subset(train), self.subset(evaluation)


def generate_driving_dataset(total_samples: int = 1200, *,
                             num_drivers: int = 5,
                             image_size: int = DEFAULT_IMAGE_SIZE,
                             window_steps: int = DEFAULT_WINDOW_STEPS,
                             imu_noise_std: float = 0.12,
                             rng: np.random.Generator | None = None
                             ) -> DrivingDataset:
    """Synthesize a paired dataset mirroring Table 1.

    Class proportions follow the paper's frame counts; samples are spread
    over ``num_drivers`` participants (paper: 5), each with their own body
    rendering and phone-holding habits.

    Args:
        total_samples: total paired samples across all classes.
        num_drivers: participant count.
        image_size: square frame resolution.
        window_steps: IMU window length (paper: 20 = 4 Hz x 5 s).
        imu_noise_std: IMU sensor noise.
        rng: randomness source.
    """
    if num_drivers <= 0:
        raise ConfigurationError("need at least one driver")
    rng = rng or np.random.default_rng()
    counts = scaled_frame_counts(total_samples)
    appearances = [DriverAppearance.sample(d, rng) for d in range(num_drivers)]
    profiles = [DriverProfile.sample(d, rng) for d in range(num_drivers)]
    renderers = [SceneRenderer(app, size=image_size) for app in appearances]
    images: list[np.ndarray] = []
    windows: list[np.ndarray] = []
    labels: list[int] = []
    drivers: list[int] = []
    for behavior, count in counts.items():
        for i in range(count):
            driver = int(rng.integers(0, num_drivers))
            images.append(renderers[driver].render(behavior, rng=rng)[None])
            episode = ImuTraceGenerator(behavior, profiles[driver], rng=rng)
            start = float(rng.uniform(0.0, 10.0))
            windows.append(episode.window(steps=window_steps, start=start,
                                          noise_std=imu_noise_std, rng=rng))
            labels.append(int(behavior))
            drivers.append(driver)
    order = rng.permutation(len(labels))
    return DrivingDataset(
        images=np.stack(images)[order],
        imu=np.stack(windows)[order],
        labels=np.asarray(labels, dtype=np.int64)[order],
        drivers=np.asarray(drivers, dtype=np.int64)[order],
    )


def summarize(dataset: DrivingDataset) -> str:
    """Text table of class counts and modalities, shaped like Table 1."""
    lines = [f"{'Class':>5}  {'Description':<17} {'Data Types':<12} {'Count':>7}"]
    for value in range(dataset.num_classes):
        behavior = as_behavior(value)
        has_imu = (int(to_extended_imu_class(value)) != 0
                   or behavior == DrivingBehavior.NORMAL)
        data_types = "Image, IMU" if has_imu else "Image, --"
        count = int(np.sum(dataset.labels == value))
        lines.append(
            f"{value + 1:>5}  {behavior.display_name:<17} "
            f"{data_types:<12} {count:>7}"
        )
    lines.append(f"{'':>5}  {'Total':<17} {'':<12} {len(dataset):>7}")
    return "\n".join(lines)
