"""Sliding-window extraction from streamed IMU data.

Bridges the streaming framework and the analytics engine: the controller
produces a 4 Hz aligned IMU stream; the RNN consumes fixed 20-step windows
("the network is trained and evaluated on a sliding window of 20 data
points", paper §4.2).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.imu_synth import DEFAULT_WINDOW_STEPS
from repro.exceptions import ConfigurationError, ShapeError


def sliding_windows(values: np.ndarray, *, steps: int = DEFAULT_WINDOW_STEPS,
                    stride: int = 1) -> np.ndarray:
    """Extract overlapping windows from a (time, features) stream.

    Returns (num_windows, steps, features); windows are copies.
    """
    values = np.asarray(values, dtype=np.float32)
    if values.ndim != 2:
        raise ShapeError(f"expected (time, features) stream, got {values.shape}")
    if steps <= 0 or stride <= 0:
        raise ConfigurationError("steps and stride must be positive")
    count = (values.shape[0] - steps) // stride + 1
    if count <= 0:
        return np.empty((0, steps, values.shape[1]), dtype=np.float32)
    windows = np.stack([
        values[i * stride:i * stride + steps] for i in range(count)
    ])
    return windows


def window_labels(labels: np.ndarray, *, steps: int = DEFAULT_WINDOW_STEPS,
                  stride: int = 1, reject_mixed: bool = False) -> np.ndarray:
    """Label each sliding window by the majority label of its steps.

    With ``reject_mixed`` windows containing more than one label get -1
    (useful to drop transition windows between scripted distractions).
    """
    labels = np.asarray(labels, dtype=np.int64)
    count = (labels.shape[0] - steps) // stride + 1
    if count <= 0:
        return np.empty(0, dtype=np.int64)
    out = np.empty(count, dtype=np.int64)
    for i in range(count):
        segment = labels[i * stride:i * stride + steps]
        unique, counts = np.unique(segment, return_counts=True)
        if reject_mixed and unique.size > 1:
            out[i] = -1
        else:
            out[i] = int(unique[np.argmax(counts)])
    return out


def windows_from_stream(values: np.ndarray, labels: np.ndarray, *,
                        steps: int = DEFAULT_WINDOW_STEPS, stride: int = 1,
                        drop_unlabelled: bool = True
                        ) -> tuple[np.ndarray, np.ndarray]:
    """Windows plus majority labels, filtering unlabelled (-1) windows."""
    if values.shape[0] != labels.shape[0]:
        raise ShapeError(
            f"stream has {values.shape[0]} steps but {labels.shape[0]} labels"
        )
    windows = sliding_windows(values, steps=steps, stride=stride)
    marks = window_labels(labels, steps=steps, stride=stride)
    if drop_unlabelled:
        keep = marks >= 0
        return windows[keep], marks[keep]
    return windows, marks
