"""Image augmentation for driver frames.

Standard augmentation for fixed-camera driver footage: brightness /
contrast jitter (lighting changes), small translations (camera mount
vibration), and additive noise.  Horizontal flips are deliberately
excluded — the cabin has a fixed left/right geometry (wheel on the left),
so a flipped frame is not a valid sample.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError


@dataclass(frozen=True)
class AugmentConfig:
    """Augmentation strengths (all ranges are symmetric around identity)."""

    brightness: float = 0.12      # additive, fraction of full scale
    contrast: float = 0.15        # multiplicative around the frame mean
    max_shift: int = 2            # translation in pixels, per axis
    noise_std: float = 0.02

    def __post_init__(self) -> None:
        if self.max_shift < 0:
            raise ConfigurationError("max_shift must be >= 0")
        if min(self.brightness, self.contrast, self.noise_std) < 0:
            raise ConfigurationError("augmentation strengths must be >= 0")


def _shift(image: np.ndarray, dy: int, dx: int) -> np.ndarray:
    """Translate with edge replication (the cabin fills the border)."""
    shifted = np.roll(np.roll(image, dy, axis=-2), dx, axis=-1)
    if dy > 0:
        shifted[..., :dy, :] = shifted[..., dy:dy + 1, :]
    elif dy < 0:
        shifted[..., dy:, :] = shifted[..., dy - 1:dy, :]
    if dx > 0:
        shifted[..., :, :dx] = shifted[..., :, dx:dx + 1]
    elif dx < 0:
        shifted[..., :, dx:] = shifted[..., :, dx - 1:dx]
    return shifted


def augment_batch(images: np.ndarray, *,
                  config: AugmentConfig | None = None,
                  rng: np.random.Generator | None = None) -> np.ndarray:
    """Return an augmented copy of an NCHW batch (values stay in [0, 1])."""
    images = np.asarray(images, dtype=np.float32)
    if images.ndim != 4:
        raise ShapeError(f"expected NCHW images, got {images.shape}")
    config = config or AugmentConfig()
    rng = rng or np.random.default_rng()
    out = images.copy()
    n = images.shape[0]
    brightness = rng.uniform(-config.brightness, config.brightness, n)
    contrast = rng.uniform(1.0 - config.contrast, 1.0 + config.contrast, n)
    for i in range(n):
        frame = out[i]
        mean = frame.mean()
        frame = (frame - mean) * contrast[i] + mean + brightness[i]
        if config.max_shift:
            dy, dx = rng.integers(-config.max_shift, config.max_shift + 1, 2)
            frame = _shift(frame, int(dy), int(dx))
        if config.noise_std:
            frame = frame + rng.normal(0.0, config.noise_std, frame.shape)
        out[i] = frame
    return np.clip(out, 0.0, 1.0)


def augmented_copies(images: np.ndarray, labels: np.ndarray, copies: int, *,
                     config: AugmentConfig | None = None,
                     rng: np.random.Generator | None = None
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Expand a training set with ``copies`` augmented passes.

    Returns the originals plus ``copies`` augmented duplicates, shuffled.
    """
    if copies < 0:
        raise ConfigurationError("copies must be >= 0")
    rng = rng or np.random.default_rng()
    images = np.asarray(images, dtype=np.float32)
    labels = np.asarray(labels)
    stacks = [images]
    label_stacks = [labels]
    for _ in range(copies):
        stacks.append(augment_batch(images, config=config, rng=rng))
        label_stacks.append(labels)
    all_images = np.concatenate(stacks)
    all_labels = np.concatenate(label_stacks)
    order = rng.permutation(all_images.shape[0])
    return all_images[order], all_labels[order]
