"""Physics-guided synthetic IMU traces.

Substitutes the paper's private phone-sensor recordings.  The paper
positions the phone in one of three orientations (§5.1): *texting* (held
between waist and eye level), *talking* (held at the ear), and *normal*
(horizontal in the front-right pocket — also used for the eating, makeup,
and reaching drives).  Each orientation fixes where gravity falls in the
device frame; on top of that we layer behaviour-specific micro-gestures
(typing jitter, speech sway), road vibration, slow orientation wander, and
per-driver habits.

Two deliberate confusion sources mirror the paper's findings:

* Reaching adds low-frequency arm-motion sway to the pocket signature —
  "the movement that occurs when reaching for an object adds enough noise
  to the IMU data to produce a talking classification" (§5.2).
* Texting holds overlap talking holds for some drivers (both are hand-held
  poses), so orientation alone does not fully separate them — the
  temporal texture (typing bursts vs. speech sway) does, which is what
  gives the RNN its edge over window-statistic SVM features.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.classes import (
    NUM_IMU_CLASSES,
    DrivingBehavior,
    ExtendedBehavior,
    ImuClass,
    as_behavior,
    to_extended_imu_class,
)
from repro.exceptions import ConfigurationError

GRAVITY = 9.81

#: Sensor ordering of the 12-feature IMU vector.
SENSOR_ORDER = ("accelerometer", "gyroscope", "gravity", "rotation")

#: Paper §4.2: 4 Hz sampling over 5 s windows -> 20 steps.
DEFAULT_SAMPLE_RATE_HZ = 4.0
DEFAULT_WINDOW_STEPS = 20


def _rotation_matrix(pitch: float, roll: float) -> np.ndarray:
    """Device-frame rotation from pitch (about x) then roll (about y)."""
    cp, sp = np.cos(pitch), np.sin(pitch)
    cr, sr = np.cos(roll), np.sin(roll)
    rot_x = np.array([[1, 0, 0], [0, cp, -sp], [0, sp, cp]])
    rot_y = np.array([[cr, 0, sr], [0, 1, 0], [-sr, 0, cr]])
    return rot_y @ rot_x


@dataclass(frozen=True)
class HoldPose:
    """Base device orientation for one phone position."""

    pitch: float  # radians about device x
    roll: float   # radians about device y
    sway_amp: float          # low-frequency hand/arm sway (m/s^2)
    sway_freq: float         # Hz
    jitter_amp: float        # high-frequency micro-gesture (m/s^2)
    jitter_freq: float       # Hz
    gyro_amp: float          # rad/s rotational activity


# Poses per IMU class.  Pitch/roll chosen so gravity lands on distinct
# device axes: pocket ~ device lying on its side, texting ~ tilted screen-up
# hold, talking ~ vertical at the ear.
_POSES: dict[ImuClass, HoldPose] = {
    ImuClass.NORMAL: HoldPose(pitch=np.pi / 2, roll=0.0, sway_amp=0.05,
                              sway_freq=0.3, jitter_amp=0.02,
                              jitter_freq=2.0, gyro_amp=0.02),
    ImuClass.TALKING: HoldPose(pitch=0.35, roll=1.25, sway_amp=0.45,
                               sway_freq=0.9, jitter_amp=0.06,
                               jitter_freq=3.0, gyro_amp=0.18),
    ImuClass.TEXTING: HoldPose(pitch=0.7, roll=0.95, sway_amp=0.12,
                               sway_freq=0.5, jitter_amp=0.55,
                               jitter_freq=5.5, gyro_amp=0.12),
}


@dataclass(frozen=True)
class DriverProfile:
    """Per-driver habits: hold-angle offsets and gesture intensity."""

    driver_id: int
    pitch_offset: float
    roll_offset: float
    gesture_scale: float
    vibration_scale: float

    @classmethod
    def sample(cls, driver_id: int, rng: np.random.Generator) -> "DriverProfile":
        """Draw a random driver (each real participant holds differently)."""
        return cls(
            driver_id=driver_id,
            pitch_offset=float(rng.normal(0.0, 0.12)),
            roll_offset=float(rng.normal(0.0, 0.12)),
            gesture_scale=float(rng.uniform(0.7, 1.3)),
            vibration_scale=float(rng.uniform(0.8, 1.2)),
        )


class ImuTraceGenerator:
    """Continuous-time IMU signal for one (behaviour, driver) episode.

    The signal is a deterministic function of time given the random phases
    drawn at construction, so it can drive both batch window generation and
    the streaming framework's sensors (which sample at arbitrary times).

    Args:
        behavior: the 6-class driving behaviour of the episode.
        driver: driver habits; defaults to a neutral profile.
        rng: randomness for phases, wander, and episode-level variation.
    """

    def __init__(self, behavior: DrivingBehavior | ExtendedBehavior | int,
                 driver: DriverProfile | None = None, *,
                 rng: np.random.Generator | None = None) -> None:
        rng = rng or np.random.default_rng()
        self.behavior = as_behavior(int(behavior))
        self.imu_class = to_extended_imu_class(int(self.behavior))
        self.driver = driver or DriverProfile(0, 0.0, 0.0, 1.0, 1.0)
        pose = _POSES[ImuClass(int(self.imu_class))
                      if int(self.imu_class) < NUM_IMU_CLASSES
                      else ImuClass.NORMAL]
        # Texting/talking hold overlap: shrink the pitch gap for a random
        # subset of episodes so orientation alone is not fully separating.
        pitch = pose.pitch + self.driver.pitch_offset + rng.normal(0.0, 0.08)
        roll = pose.roll + self.driver.roll_offset + rng.normal(0.0, 0.08)
        if self.imu_class in (ImuClass.TALKING, ImuClass.TEXTING):
            if rng.random() < 0.6:
                # Ambiguous hold: orientation drifts toward the other
                # hand-held pose, leaving the temporal texture (typing
                # bursts vs. speech sway) as the separating signal.
                blend = rng.uniform(0.3, 0.7)
                other = (ImuClass.TEXTING
                         if self.imu_class == ImuClass.TALKING
                         else ImuClass.TALKING)
                pitch = (blend * _POSES[self.imu_class].pitch
                         + (1 - blend) * _POSES[other].pitch
                         + rng.normal(0.0, 0.05))
                roll = (blend * _POSES[self.imu_class].roll
                        + (1 - blend) * _POSES[other].roll
                        + rng.normal(0.0, 0.05))
        self._rotation = _rotation_matrix(pitch, roll)
        self._pose = pose
        # Random phases make every episode distinct but deterministic in t.
        self._sway_phase = rng.uniform(0, 2 * np.pi, 3)
        self._jitter_phase = rng.uniform(0, 2 * np.pi, 3)
        self._wander_phase = rng.uniform(0, 2 * np.pi, 2)
        self._road_phase = rng.uniform(0, 2 * np.pi, 4)
        self._road_freq = rng.uniform(8.0, 14.0, 4)
        self._jitter_freq = pose.jitter_freq * rng.uniform(0.85, 1.15)
        self._sway_freq = pose.sway_freq * rng.uniform(0.85, 1.15)
        # Episode-level amplitude randomization: gesture *energy* overlaps
        # heavily across classes, so summary statistics (std/energy) are
        # weak cues and the temporal frequency structure carries the class
        # — the source of the RNN's edge over the SVM baseline (§5.2).
        self._amp_scale = float(rng.uniform(0.5, 1.6))
        # Per-episode sensor mounting/bias offset (m/s^2).
        self._bias = rng.normal(0.0, 0.25, 3)
        # Typing happens in bursts, not continuously.
        self._burst_freq = rng.uniform(0.15, 0.3)
        self._burst_phase = rng.uniform(0, 2 * np.pi)
        # Reaching: arm-motion sway bleeding into the pocket signature.
        self._reach_sway = 0.0
        if self.behavior == DrivingBehavior.REACHING:
            self._reach_sway = float(rng.uniform(0.35, 0.7))
        elif self.behavior in (DrivingBehavior.EATING_DRINKING,
                               DrivingBehavior.HAIR_MAKEUP):
            self._reach_sway = float(rng.uniform(0.05, 0.15))
        # Drowsiness: the phone rides in the pocket, but the *vehicle*
        # weaves — slow lateral drift punctuated by sharp correction jerks
        # when the driver snaps back to lane centre.  These draws come
        # strictly after every paper-class draw and only fire for DROWSY,
        # so the RNG stream for classes 0-5 is unchanged.
        self._weave_amp = 0.0
        if self.behavior == ExtendedBehavior.DROWSY:
            self._weave_amp = float(rng.uniform(0.55, 0.95))
            self._weave_freq = float(rng.uniform(0.16, 0.28))
            self._weave_phase = float(rng.uniform(0, 2 * np.pi))
            self._correction_period = float(rng.uniform(3.5, 6.5))
            self._correction_phase = float(rng.uniform(0.0, 1.0))

    # -- signal components ----------------------------------------------------
    def _gravity_device(self, t: float | np.ndarray) -> np.ndarray:
        """Gravity in the device frame with slow orientation wander."""
        t = np.atleast_1d(np.asarray(t, dtype=np.float64))
        wander_pitch = 0.05 * np.sin(2 * np.pi * 0.05 * t + self._wander_phase[0])
        wander_roll = 0.05 * np.sin(2 * np.pi * 0.07 * t + self._wander_phase[1])
        world_gravity = np.array([0.0, 0.0, -GRAVITY])
        base = self._rotation.T @ world_gravity
        # First-order wander: rotate the base vector slightly over time.
        out = np.empty((t.size, 3))
        out[:, 0] = base[0] + GRAVITY * wander_pitch
        out[:, 1] = base[1] + GRAVITY * wander_roll
        out[:, 2] = base[2] - 0.5 * GRAVITY * (wander_pitch ** 2 + wander_roll ** 2)
        return out

    def _gesture(self, t: np.ndarray) -> np.ndarray:
        """Behaviour-specific hand/arm motion (device-frame acceleration)."""
        pose = self._pose
        scale = self.driver.gesture_scale * self._amp_scale
        sway = pose.sway_amp * scale * np.stack([
            np.sin(2 * np.pi * self._sway_freq * t + self._sway_phase[i])
            for i in range(3)
        ], axis=1)
        burst_gate = 0.5 * (1 + np.sign(
            np.sin(2 * np.pi * self._burst_freq * t + self._burst_phase)))
        jitter = pose.jitter_amp * scale * burst_gate[:, None] * np.stack([
            np.sin(2 * np.pi * self._jitter_freq * t + self._jitter_phase[i])
            for i in range(3)
        ], axis=1)
        reach = self._reach_sway * np.stack([
            np.sin(2 * np.pi * 0.8 * t + self._sway_phase[0] + 1.0),
            np.sin(2 * np.pi * 1.1 * t + self._sway_phase[1] + 2.0),
            np.zeros_like(t),
        ], axis=1)
        out = sway + jitter + reach
        if self._weave_amp:
            out = out + self._drowsy_weave(t)
        return out

    def _drowsy_weave(self, t: np.ndarray) -> np.ndarray:
        """Lane-weave acceleration signature of a drowsy drive.

        A sub-0.3 Hz lateral oscillation (far below any gesture band) with
        a periodic near-impulse correction jerk riding on top — the
        frequency structure the extended RNN head keys on.
        """
        weave = self._weave_amp * np.sin(
            2 * np.pi * self._weave_freq * t + self._weave_phase)
        phase01 = (t / self._correction_period + self._correction_phase) % 1.0
        jerk = 1.8 * self._weave_amp * np.exp(-((phase01 - 0.5) ** 2) / 0.004)
        out = np.zeros((t.size, 3))
        out[:, 0] = weave + jerk
        out[:, 1] = 0.35 * weave
        return out

    def _road_vibration(self, t: np.ndarray) -> np.ndarray:
        """Band-limited vehicle vibration common to all behaviours."""
        scale = 0.08 * self.driver.vibration_scale
        vib = sum(
            np.sin(2 * np.pi * self._road_freq[i] * t + self._road_phase[i])
            for i in range(4)
        )
        out = np.zeros((t.size, 3))
        out[:, 2] = scale * vib
        out[:, 0] = 0.4 * scale * np.roll(vib, 1) if t.size > 1 else 0.0
        return out

    # -- public surface ---------------------------------------------------
    def sample(self, sensor: str, t: float | np.ndarray) -> np.ndarray:
        """Clean signal for one sensor at time(s) ``t``.

        Returns shape (3,) for scalar ``t`` or (len(t), 3) otherwise.
        """
        scalar = np.isscalar(t)
        times = np.atleast_1d(np.asarray(t, dtype=np.float64))
        gravity_vec = self._gravity_device(times)
        if sensor == "gravity":
            out = gravity_vec + self._bias
        elif sensor == "accelerometer":
            out = (gravity_vec + self._bias + self._gesture(times)
                   + self._road_vibration(times))
        elif sensor == "gyroscope":
            pose = self._pose
            out = pose.gyro_amp * self.driver.gesture_scale * self._amp_scale * np.stack([
                np.cos(2 * np.pi * self._sway_freq * times + self._sway_phase[i])
                for i in range(3)
            ], axis=1)
            if self._reach_sway:
                out = out + 0.3 * self._reach_sway * np.stack([
                    np.cos(2 * np.pi * 0.8 * times + self._sway_phase[0]),
                    np.cos(2 * np.pi * 1.1 * times + self._sway_phase[1]),
                    np.zeros_like(times),
                ], axis=1)
            if self._weave_amp:
                # Weave shows up as yaw-rate oscillation at the weave freq.
                out = out + np.stack([
                    np.zeros_like(times),
                    np.zeros_like(times),
                    0.3 * self._weave_amp * np.cos(
                        2 * np.pi * self._weave_freq * times
                        + self._weave_phase),
                ], axis=1)
        elif sensor == "rotation":
            # Rotation-vector components track normalized gravity direction.
            norm = np.linalg.norm(gravity_vec, axis=1, keepdims=True)
            out = gravity_vec / np.maximum(norm, 1e-9)
        else:
            raise ConfigurationError(f"unknown IMU sensor {sensor!r}")
        return out[0] if scalar else out

    def window(self, *, steps: int = DEFAULT_WINDOW_STEPS,
               rate_hz: float = DEFAULT_SAMPLE_RATE_HZ, start: float = 0.0,
               noise_std: float = 0.12,
               rng: np.random.Generator | None = None) -> np.ndarray:
        """One (steps, 12) window sampled at ``rate_hz`` starting at ``start``."""
        rng = rng or np.random.default_rng()
        times = start + np.arange(steps) / rate_hz
        parts = [self.sample(name, times) for name in SENSOR_ORDER]
        window = np.concatenate(parts, axis=1)
        if noise_std:
            window = window + rng.normal(0.0, noise_std, window.shape)
        return window.astype(np.float32)

    def signal_fn(self):
        """Adapter for the streaming framework: ``(sensor, t) -> 3-vector``."""
        return lambda sensor, t: self.sample(sensor, t)


def generate_imu_windows(behavior: DrivingBehavior | int, count: int, *,
                         driver: DriverProfile | None = None,
                         steps: int = DEFAULT_WINDOW_STEPS,
                         rate_hz: float = DEFAULT_SAMPLE_RATE_HZ,
                         noise_std: float = 0.12,
                         rng: np.random.Generator | None = None
                         ) -> np.ndarray:
    """Generate ``count`` independent windows of one behaviour.

    Each window comes from a fresh episode (new hold angles and phases),
    mirroring the paper's repeated 15-second scripted distractions.
    """
    if count <= 0:
        raise ConfigurationError(f"count must be positive, got {count}")
    rng = rng or np.random.default_rng()
    windows = np.empty((count, steps, 12), dtype=np.float32)
    for i in range(count):
        generator = ImuTraceGenerator(behavior, driver, rng=rng)
        start = float(rng.uniform(0.0, 10.0))
        windows[i] = generator.window(steps=steps, rate_hz=rate_hz,
                                      start=start, noise_std=noise_std,
                                      rng=rng)
    return windows


def standardize_windows(windows: np.ndarray,
                        stats: tuple[np.ndarray, np.ndarray] | None = None
                        ) -> tuple[np.ndarray, tuple[np.ndarray, np.ndarray]]:
    """Per-feature standardization; returns (scaled, (mean, std)).

    Pass the training-set ``stats`` back in to transform evaluation data
    consistently.
    """
    windows = np.asarray(windows, dtype=np.float32)
    if stats is None:
        mean = windows.mean(axis=(0, 1))
        std = windows.std(axis=(0, 1))
        std = np.where(std > 1e-6, std, 1.0)
        stats = (mean, std)
    mean, std = stats
    return ((windows - mean) / std).astype(np.float32), stats
