"""Process-style task supervision for the edge agent's loops.

The agent runs four cooperative loops — sensor, infer, upload, update —
and a crash in one must not take down the others (a wedged OTA check
cannot be allowed to stop verdicts).  :class:`TaskSupervisor` gives each
loop the supervision a process tree would:

* each task runs on its own interval off the shared virtual clock;
* an exception is caught at the task boundary, counted, and the task is
  **restarted after an exponential backoff** (doubling per consecutive
  failure, capped), while the other tasks keep their schedule;
* every successful run emits a heartbeat into a
  :class:`~repro.streaming.health.HealthRegistry` under the id
  ``<agent>/<task>``, so the controller-grade HEALTHY → DEGRADED →
  SILENT machinery supervises individual loops: a task stuck in its
  backoff window goes DEGRADED, a dead one goes SILENT.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.exceptions import ConfigurationError
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.streaming.health import HealthRegistry, Heartbeat


@dataclass
class SupervisedTask:
    """One supervised loop."""

    name: str
    fn: Callable[[float], None]
    interval: float
    next_run: float = 0.0
    runs: int = 0
    failures: int = 0
    restarts: int = 0
    consecutive_failures: int = 0
    sequence: int = 0
    last_error: str = ""
    history: list[str] = field(default_factory=list)


class TaskSupervisor:
    """Runs the agent's loops with restart-on-crash and heartbeats.

    Args:
        agent_id: prefix for the per-task heartbeat identities.
        health: liveness registry heartbeats land in (``None`` disables
            health reporting; tasks are still supervised/restarted).
        backoff_base: first restart delay after a failure.
        backoff_max: restart delay ceiling.
    """

    def __init__(self, agent_id: str, *,
                 health: HealthRegistry | None = None,
                 backoff_base: float = 0.5, backoff_max: float = 8.0,
                 registry: MetricsRegistry | None = None) -> None:
        if backoff_base <= 0 or backoff_max < backoff_base:
            raise ConfigurationError(
                "need 0 < backoff_base <= backoff_max")
        self.agent_id = agent_id
        self.health = health
        self.backoff_base = float(backoff_base)
        self.backoff_max = float(backoff_max)
        self._tasks: dict[str, SupervisedTask] = {}
        registry = registry or get_registry()
        self._obs_runs = registry.counter(
            "edge_task_runs_total", "Supervised task executions",
            agent=agent_id)
        self._obs_failures = registry.counter(
            "edge_task_failures_total",
            "Supervised task executions that raised", agent=agent_id)
        self._obs_restarts = registry.counter(
            "edge_task_restarts_total",
            "Task restarts after a backoff window", agent=agent_id)

    def add_task(self, name: str, fn: Callable[[float], None],
                 interval: float, *, start: float = 0.0) -> None:
        """Register a loop: ``fn(now)`` runs every ``interval`` seconds."""
        if interval <= 0:
            raise ConfigurationError("task interval must be positive")
        if name in self._tasks:
            raise ConfigurationError(f"task {name!r} already supervised")
        self._tasks[name] = SupervisedTask(name=name, fn=fn,
                                           interval=float(interval),
                                           next_run=float(start))
        if self.health is not None:
            self.health.register(f"{self.agent_id}/{name}", start)

    def step(self, now: float) -> int:
        """Run every task that is due; returns how many ran."""
        ran = 0
        for task in self._tasks.values():
            if now < task.next_run:
                continue
            if task.consecutive_failures:
                task.restarts += 1
                self._obs_restarts.inc()
                task.history.append(
                    f"{now:.3f} restart #{task.restarts} of {task.name}")
            try:
                task.fn(now)
            except Exception as error:  # noqa: BLE001 — task fault barrier
                task.failures += 1
                task.consecutive_failures += 1
                task.last_error = f"{type(error).__name__}: {error}"
                self._obs_failures.inc()
                backoff = min(
                    self.backoff_base
                    * 2.0 ** (task.consecutive_failures - 1),
                    self.backoff_max)
                task.next_run = now + backoff
                continue
            task.runs += 1
            task.consecutive_failures = 0
            task.next_run = now + task.interval
            ran += 1
            self._obs_runs.inc()
            if self.health is not None:
                task.sequence += 1
                self.health.record_heartbeat(
                    Heartbeat(agent_id=f"{self.agent_id}/{task.name}",
                              timestamp=now, sequence=task.sequence),
                    now)
        return ran

    # -- inspection --------------------------------------------------------
    def task(self, name: str) -> SupervisedTask:
        if name not in self._tasks:
            raise ConfigurationError(f"no supervised task {name!r}")
        return self._tasks[name]

    @property
    def names(self) -> list[str]:
        return list(self._tasks)

    def report(self) -> dict:
        """Per-task run/failure/restart summary."""
        return {
            name: {"runs": task.runs, "failures": task.failures,
                   "restarts": task.restarts,
                   "last_error": task.last_error}
            for name, task in self._tasks.items()
        }
