"""On-device store-and-forward spool: verdicts survive a dead uplink.

The edge agent's contract mirrors the serving journal's: a verdict the
device produced is never *silently* lost — not when the uplink is
blackholed for a minute, not when the agent process is SIGKILLed
mid-append.  The spool is the same append-only, CRC-framed,
fsync-batched WAL idiom as :mod:`repro.serving.journal`, adapted to the
device side:

* every verdict (and every evidence clip) is framed to disk *before* an
  upload is attempted;
* an **ack cursor** sidecar records how far the controller has
  acknowledged; on restart only unacknowledged records re-enter the
  upload queue (the controller dedups by record id, so a crashed cursor
  write costs a duplicate upload, never a lost one);
* :meth:`EdgeSpool.open` replays the WAL on startup, and a torn tail —
  the frame a SIGKILL interrupted — is detected by its CRC/length and
  **truncated in place**, so the next append starts on a clean frame
  boundary instead of corrupting everything after it;
* recovery also restores :attr:`EdgeSpool.last_sequence`, the highest
  sequence ever spooled *or* acknowledged, so a restarted agent resumes
  numbering past its previous incarnation — a reused sequence would be
  deduplicated downstream, i.e. a verdict silently lost.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError, SpoolError
from repro.obs.metrics import MetricsRegistry, get_registry

#: Frame layout: magic(2) | payload_length:u32 LE | crc32(payload):u32 LE.
MAGIC = b"ES"
_HEADER = struct.Struct("<2sII")

#: Record kinds the spool carries.
KIND_VERDICT = "verdict"
KIND_CLIP = "clip"


@dataclass(frozen=True)
class SpoolRecord:
    """One spooled upload: a local verdict or an evidence clip.

    ``sequence`` is the agent-scoped upload sequence (one space across
    both kinds); ``(agent_id, sequence)`` is the identity the controller
    dedups on, so a record replayed after a crash or retransmitted over
    a flaky link lands downstream exactly once.
    """

    agent_id: str
    sequence: int
    timestamp: float
    kind: str = KIND_VERDICT
    predicted: int = -1
    confidence: float = 0.0
    degraded: bool = False
    model_version: int = 0
    payload: str = ""     #: hex-encoded evidence bytes for clip records

    @property
    def record_id(self) -> tuple[str, int]:
        return (self.agent_id, self.sequence)

    @property
    def wire_size(self) -> int:
        """Uplink cost: the framed JSON body plus an envelope header.

        Clip records carry their evidence bytes inline, so a clip's wire
        size scales with the clip — the bandwidth model charges for it.
        """
        return len(self.to_payload()) + 24

    def to_payload(self) -> bytes:
        return json.dumps({
            "agent_id": self.agent_id, "sequence": self.sequence,
            "timestamp": self.timestamp, "kind": self.kind,
            "predicted": self.predicted, "confidence": self.confidence,
            "degraded": self.degraded, "model_version": self.model_version,
            "payload": self.payload,
        }, sort_keys=True, separators=(",", ":")).encode("utf-8")

    @classmethod
    def from_payload(cls, payload: bytes) -> "SpoolRecord":
        data = json.loads(payload.decode("utf-8"))
        return cls(agent_id=data["agent_id"],
                   sequence=int(data["sequence"]),
                   timestamp=float(data["timestamp"]),
                   kind=data.get("kind", KIND_VERDICT),
                   predicted=int(data.get("predicted", -1)),
                   confidence=float(data.get("confidence", 0.0)),
                   degraded=bool(data.get("degraded", False)),
                   model_version=int(data.get("model_version", 0)),
                   payload=data.get("payload", ""))


def frame_spool_record(record: SpoolRecord) -> bytes:
    """One on-disk frame: header + payload, CRC over the payload."""
    payload = record.to_payload()
    return _HEADER.pack(MAGIC, len(payload),
                        zlib.crc32(payload) & 0xFFFFFFFF) + payload


@dataclass
class SpoolReplay:
    """What :func:`replay_spool` recovered from a spool file."""

    records: list[SpoolRecord] = field(default_factory=list)
    duplicates: int = 0
    torn: int = 0
    bytes_read: int = 0


def replay_spool(path: str) -> SpoolReplay:
    """Crash-safe replay: parse intact frames, dedup, stop at a torn tail.

    ``bytes_read`` is the offset of the last fully verified frame — the
    truncation point a recovery pass cuts the file back to.
    """
    replay = SpoolReplay()
    if not os.path.exists(path):
        return replay
    with open(path, "rb") as handle:
        blob = handle.read()
    seen: set[tuple[str, int]] = set()
    offset = 0
    while offset < len(blob):
        header = blob[offset:offset + _HEADER.size]
        if len(header) < _HEADER.size:
            replay.torn += 1
            break
        magic, length, crc = _HEADER.unpack(header)
        payload = blob[offset + _HEADER.size:offset + _HEADER.size + length]
        if (magic != MAGIC or len(payload) < length
                or zlib.crc32(payload) & 0xFFFFFFFF != crc):
            replay.torn += 1
            break
        try:
            record = SpoolRecord.from_payload(payload)
        except (ValueError, KeyError):
            replay.torn += 1
            break
        offset += _HEADER.size + length
        replay.bytes_read = offset
        if record.record_id in seen:
            replay.duplicates += 1
            continue
        seen.add(record.record_id)
        replay.records.append(record)
    return replay


class EdgeSpool:
    """Durable upload queue for one edge agent.

    Args:
        path: WAL file (a ``<path>.cursor`` sidecar tracks acks).
        fsync_every: records between disk barriers.
        registry: metrics registry; process default when omitted.

    Use :meth:`open` to construct: it recovers the WAL first (truncating
    any torn tail) and seeds the pending queue with every record the
    cursor has not acknowledged.
    """

    def __init__(self, path: str, *, fsync_every: int = 8,
                 registry: MetricsRegistry | None = None) -> None:
        if fsync_every < 1:
            raise ConfigurationError("fsync_every must be >= 1")
        self.path = str(path)
        self.cursor_path = self.path + ".cursor"
        self.fsync_every = int(fsync_every)
        self.torn_truncated = 0
        self.appended = 0
        self.acked = 0
        #: Highest sequence ever spooled or acked; seed new sequences
        #: past this so a restart never reuses one.
        self.last_sequence = 0
        self._since_sync = 0
        self._pending: list[SpoolRecord] = []
        # Sequences are 1-based; ``_acked_through == 0`` means nothing
        # acked yet, and out-of-order acks wait in the extra set until
        # the gap below them closes.
        self._acked_through = 0
        self._acked_extra: set[int] = set()
        registry = registry or get_registry()
        self._obs_depth = registry.gauge(
            "edge_spool_depth", "Spooled records awaiting upload ack")
        self._obs_bytes = registry.gauge(
            "edge_spool_disk_bytes", "Bytes of edge spool on disk")
        self._obs_appends = registry.counter(
            "edge_spool_appends_total", "Records appended to the spool")
        self._obs_acked = registry.counter(
            "edge_spool_acked_total", "Spooled records acknowledged")
        self._obs_truncated = registry.counter(
            "edge_spool_truncated_total",
            "Torn tail frames truncated during spool recovery")
        self._recover()
        try:
            self._handle = open(self.path, "ab")
        except OSError as error:
            raise SpoolError(
                f"cannot open spool {path!r}: {error}") from error
        self._publish()

    @classmethod
    def open(cls, path: str, **options) -> "EdgeSpool":
        """Open (and crash-recover) the spool at ``path``."""
        return cls(path, **options)

    # -- recovery ----------------------------------------------------------
    def _recover(self) -> None:
        self._load_cursor()
        replay = replay_spool(self.path)
        if replay.torn:
            # A SIGKILL mid-append left a partial frame; cut the file
            # back to the last verified frame boundary so appends resume
            # on clean framing.
            with open(self.path, "r+b") as handle:
                handle.truncate(replay.bytes_read)
            self.torn_truncated = replay.torn
            self._obs_truncated.inc(replay.torn)
        for record in replay.records:
            if not self._is_acked(record.sequence):
                self._pending.append(record)
        # The cursor can sit above every surviving record (a compacted,
        # fully-acked spool has an empty WAL), so the high-water mark is
        # the max across both the WAL and the ack state.
        self.last_sequence = max(
            self.last_sequence, self._acked_through,
            max(self._acked_extra, default=0),
            max((r.sequence for r in replay.records), default=0))

    def _load_cursor(self) -> None:
        if not os.path.exists(self.cursor_path):
            return
        try:
            with open(self.cursor_path, encoding="utf-8") as handle:
                data = json.load(handle)
            self._acked_through = max(0, int(data.get("acked_through", 0)))
            self._acked_extra = {int(s) for s in data.get("extra", [])}
        except (OSError, ValueError):
            # A torn cursor means re-uploading at most everything on
            # disk; the controller dedups, so safety beats freshness.
            self._acked_through = 0
            self._acked_extra = set()

    def _save_cursor(self) -> None:
        payload = json.dumps({"acked_through": self._acked_through,
                              "extra": sorted(self._acked_extra)})
        tmp = self.cursor_path + ".tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp, self.cursor_path)
        except OSError:
            pass  # a stale cursor only costs deduplicated re-uploads

    def _is_acked(self, sequence: int) -> bool:
        return sequence <= self._acked_through \
            or sequence in self._acked_extra

    # -- appending ---------------------------------------------------------
    def append(self, record: SpoolRecord) -> None:
        """Durably queue one record for upload."""
        if self._is_acked(record.sequence):
            return
        try:
            self._handle.write(frame_spool_record(record))
        except OSError as error:
            raise SpoolError(f"spool append failed: {error}") from error
        self.appended += 1
        self.last_sequence = max(self.last_sequence, record.sequence)
        self._obs_appends.inc()
        self._since_sync += 1
        if self._since_sync >= self.fsync_every:
            self.sync()
        self._pending.append(record)
        self._publish()

    def sync(self) -> None:
        """Flush buffered frames and issue the disk barrier."""
        if self._handle.closed:
            return
        try:
            self._handle.flush()
            os.fsync(self._handle.fileno())
        except OSError:
            pass  # replay-side CRC detects whatever did not land
        self._since_sync = 0

    # -- upload queue ------------------------------------------------------
    @property
    def depth(self) -> int:
        """Records spooled but not yet acknowledged."""
        return len(self._pending)

    def pending(self, limit: int | None = None) -> list[SpoolRecord]:
        """The oldest unacknowledged records, in append order."""
        if limit is None:
            return list(self._pending)
        return self._pending[:limit]

    def ack(self, sequence: int) -> None:
        """The controller acknowledged the record carrying ``sequence``."""
        if self._is_acked(sequence):
            return
        self._acked_extra.add(sequence)
        while self._acked_through + 1 in self._acked_extra:
            self._acked_through += 1
            self._acked_extra.discard(self._acked_through)
        self._pending = [r for r in self._pending
                         if r.sequence != sequence]
        self.acked += 1
        self._obs_acked.inc()
        self._save_cursor()
        self._publish()

    # -- maintenance -------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        if self._handle.closed:
            try:
                return os.path.getsize(self.path)
            except OSError:
                return 0
        return self._handle.tell()

    def compact(self) -> None:
        """Rewrite the WAL keeping only unacknowledged records.

        Called on clean shutdown so an agent that has been online for a
        long drive does not replay megabytes of acked history next boot.
        """
        self.sync()
        records = list(self._pending)
        tmp = self.path + ".compact"
        with open(tmp, "wb") as handle:
            for record in records:
                handle.write(frame_spool_record(record))
            handle.flush()
            os.fsync(handle.fileno())
        self._handle.close()
        os.replace(tmp, self.path)
        self._handle = open(self.path, "ab")
        # The ack cursor survives compaction untouched: surviving
        # records keep their original (high) sequences, so resetting it
        # would strand every future ack in the extra set forever.
        self._save_cursor()
        self._publish()

    def close(self) -> None:
        if not self._handle.closed:
            self.compact()
            self._handle.close()

    def _publish(self) -> None:
        self._obs_depth.set(len(self._pending))
        self._obs_bytes.set(self.size_bytes)
