"""Edge chaos: uplink loss, corrupt OTA artifacts, sabotaged canaries.

The serving chaos drive proves the controller's side of the house; this
module proves the *device* side.  A small fleet of
:class:`~repro.edge.agent.EdgeAgent`\\ s replays scripted drives while a
:class:`~repro.streaming.faults.FaultSchedule` injects the three edge
fault kinds:

* ``uplink_blackhole`` — the agent's uplink drops every packet for a
  window; verdicts must accumulate in the disk spool and drain
  exactly-once on reconnect;
* ``ota_corrupt_artifact`` — every chunk served for the targeted release
  version is bit-flipped in transit; the digest gate must reject the
  release before any weights are loaded or swapped;
* ``ota_download_kill`` — the targeted agent's updater process dies
  mid-download and is rebuilt on the same state directory; the download
  must *resume* from the persisted partial files, not restart.

On top of the schedule, the drive publishes a **sabotaged canary**: a
release whose artifacts frame and verify perfectly (valid digests, valid
signature) but whose weights have been scrambled — the rollout poison
digests cannot catch.  The canary cohort must install it, watch probe
accuracy collapse, roll back to the previous model automatically and
mark the release bad fleet-wide.

:func:`run_edge_chaos` audits the invariants and collects violations
(not raises), so the CLI can print the audit and exit non-zero — the
``edge-chaos-smoke`` CI job runs exactly that.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.darnet import DriveScript
from repro.core.model_store import artifact_digests, save_ensemble
from repro.datasets.classes import DrivingBehavior
from repro.datasets.dataset import generate_driving_dataset
from repro.edge.agent import EdgeAgent
from repro.edge.manifest import ReleaseManifest
from repro.edge.ota import DOWNLOADING, IDLE, OtaClient, OtaServer
from repro.edge.spool import EdgeSpool, replay_spool
from repro.edge.uploader import EdgeUplinkReceiver, EdgeUploader
from repro.exceptions import ConfigurationError
from repro.obs.metrics import get_registry
from repro.serving.journal import StoreAndForwardSink, VerdictJournal
from repro.serving.registry import ServingModelRegistry
from repro.serving.replay import synthesize_trace
from repro.streaming.faults import FaultEvent, FaultSchedule
from repro.streaming.health import HealthRegistry
from repro.streaming.reliability import reliable_link


def sabotage_release(source: str, destination: str, *,
                     rng: np.random.Generator) -> None:
    """Copy a saved release, scrambling its learned weights.

    Every value in the CNN/RNN weight arrays is kept (a permutation), so
    the artifacts stay perfectly well-formed — valid npz, valid shapes,
    valid digests after the manifest is restamped — but the model they
    load is garbage.  This is the canary scenario: an artifact integrity
    cannot catch, only a probe set can.
    """
    os.makedirs(destination, exist_ok=True)
    for name in sorted(os.listdir(source)):
        src = os.path.join(source, name)
        dst = os.path.join(destination, name)
        if name in ("cnn.npz", "rnn.npz"):
            with np.load(src) as data:
                arrays = {
                    key: rng.permutation(data[key].ravel())
                    .reshape(data[key].shape)
                    for key in data.files
                }
            np.savez(dst, **arrays)
        else:
            with open(src, "rb") as handle:
                blob = handle.read()
            with open(dst, "wb") as handle:
                handle.write(blob)
    # Restamp the store manifest so load_ensemble's own digest gate
    # passes — the sabotage must be invisible to integrity checking.
    manifest_path = os.path.join(destination, "manifest.json")
    with open(manifest_path, encoding="utf-8") as handle:
        manifest = json.load(handle)
    manifest["digests"] = artifact_digests(destination)
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)


def minimal_canary_percent(version: int, agent_ids: list[str]) -> float:
    """Smallest 5%-step canary fraction that includes >= 1 fleet agent.

    The cohort hash is deterministic, so the chaos drive can pick the
    smallest blast radius that still exercises the canary path.
    """
    for percent in range(5, 101, 5):
        manifest = ReleaseManifest(name="edge", version=version,
                                   canary_percent=float(percent))
        if any(manifest.in_canary(agent_id) for agent_id in agent_ids):
            return float(percent)
    return 100.0


def standard_edge_schedule(duration: float = 24.0) -> FaultSchedule:
    """The canonical edge scenario: an uplink blackhole across the whole
    fleet mid-drive, release v2 corrupted in transit for the entire
    drive, and agent edge-0's updater killed during its first download.

    The corruption window extends past the drive's end so a download
    that spills into the settle phase (e.g. after the scripted kill)
    still fetches corrupt bytes — v2 must never install cleanly."""
    return FaultSchedule([
        FaultEvent(0.30 * duration, 0.50 * duration, "uplink_blackhole",
                   "*"),
        FaultEvent(0.0, float("inf"), "ota_corrupt_artifact", "2"),
        FaultEvent(0.0, 0.40 * duration, "ota_download_kill", "edge-0"),
    ])


class EdgeChaosHarness:
    """Reconciles fleet + OTA server state with a fault schedule.

    ``uplink_blackhole`` and ``ota_corrupt_artifact`` are
    level-triggered; ``ota_download_kill`` is edge-triggered — it fires
    once per event, at the first tick the target agent is demonstrably
    mid-download (phase DOWNLOADING with staged bytes on disk), by
    rebuilding the agent's OTA client on the same state directory.
    """

    def __init__(self, schedule: FaultSchedule, server: OtaServer,
                 agents: dict[str, EdgeAgent],
                 links: dict[str, tuple],
                 rebuild_ota: Callable[[EdgeAgent], OtaClient]) -> None:
        self.schedule = schedule
        self.server = server
        self.agents = agents
        self.links = links
        self.rebuild_ota = rebuild_ota
        self.log: list[tuple[float, str, str, str]] = []
        self.kills = 0
        self._blackholed: dict[str, tuple[float, float]] = {}
        self._killed_events: set[FaultEvent] = set()

    def apply(self, now: float) -> None:
        for agent_id, (data, ack) in self.links.items():
            active = self.schedule.active_for(
                "uplink_blackhole", agent_id, now) is not None
            if active and agent_id not in self._blackholed:
                self._blackholed[agent_id] = (data.drop_probability,
                                              ack.drop_probability)
                data.drop_probability = 1.0
                ack.drop_probability = 1.0
                self.log.append((now, "uplink_blackhole", agent_id, "on"))
            elif not active and agent_id in self._blackholed:
                data.drop_probability, ack.drop_probability = \
                    self._blackholed.pop(agent_id)
                self.log.append((now, "uplink_blackhole", agent_id, "off"))
        corrupt = {
            int(event.target)
            for event in self.schedule.events
            if event.kind == "ota_corrupt_artifact" and event.active(now)
            and event.target != "*"
        }
        if corrupt != self.server.corrupt_versions:
            self.server.corrupt_versions = corrupt
            self.log.append((now, "ota_corrupt_artifact",
                             ",".join(map(str, sorted(corrupt))) or "-",
                             "on" if corrupt else "off"))
        for event in self.schedule.events:
            if event.kind != "ota_download_kill" or not event.active(now) \
                    or event in self._killed_events:
                continue
            agent = self.agents.get(event.target)
            if agent is None or agent.ota is None:
                continue
            if agent.ota.phase != DOWNLOADING:
                continue
            if self._staged_bytes(agent.ota) <= 0:
                continue
            agent.ota = self.rebuild_ota(agent)
            self._killed_events.add(event)
            self.kills += 1
            self.log.append((now, "ota_download_kill", event.target, "on"))

    @staticmethod
    def _staged_bytes(ota: OtaClient) -> int:
        total = 0
        for entry in os.listdir(ota.state_dir):
            stage = os.path.join(ota.state_dir, entry)
            if entry.startswith("stage-") and os.path.isdir(stage):
                total += sum(os.path.getsize(os.path.join(stage, f))
                             for f in os.listdir(stage))
        return total


@dataclass
class EdgeChaosReport:
    """The audit :func:`run_edge_chaos` produces."""

    agents: int
    duration: float
    seed: int
    verdicts: int
    clips: int
    produced: int
    delivered: int
    duplicates: int
    lost: int
    spool_torn: int
    spool_truncated: int
    spool_residue: int
    uplink_blackholes: int
    ota_kills: int
    ota_installs: int
    ota_rollbacks: int
    integrity_rejections: int
    bytes_resumed: int
    bad_versions: list[int]
    final_versions: dict[str, int]
    final_accuracy: dict[str, float]
    baseline_accuracy: float
    violations: list[str] = field(default_factory=list)
    harness_log: list = field(default_factory=list)
    metrics: dict = field(default_factory=dict)

    def format_report(self) -> str:
        """Human-readable audit summary for the CLI."""
        versions = ", ".join(f"{aid}=v{v}"
                             for aid, v in sorted(self.final_versions.items()))
        accuracy = ", ".join(f"{aid}={acc:.2f}"
                             for aid, acc in sorted(self.final_accuracy.items()))
        lines = [
            f"Edge chaos — {self.agents} agents, {self.duration:.0f} s "
            f"drive (seed {self.seed})",
            f"  verdicts   produced {self.produced} ({self.verdicts} "
            f"verdicts + {self.clips} clips)   delivered {self.delivered}"
            f"   duplicates {self.duplicates}   lost {self.lost}",
            f"  spool      torn {self.spool_torn}   truncated "
            f"{self.spool_truncated}   residue {self.spool_residue}",
            f"  uplink     blackholes {self.uplink_blackholes}",
            f"  ota        installs {self.ota_installs}   rollbacks "
            f"{self.ota_rollbacks}   integrity rejections "
            f"{self.integrity_rejections}   resumed "
            f"{self.bytes_resumed} bytes   kills {self.ota_kills}",
            f"  releases   marked bad {self.bad_versions or 'none'}   "
            f"pinned [{versions}]",
            f"  fleet      probe accuracy [{accuracy}] "
            f"(baseline {self.baseline_accuracy:.2f})",
        ]
        if self.violations:
            lines.append("  VIOLATIONS:")
            lines.extend(f"    - {violation}"
                         for violation in self.violations)
        else:
            lines.append("  invariants: all hold (zero verdict loss, "
                         "corrupt release rejected, sabotaged canary "
                         "rolled back, downloads resumed)")
        return "\n".join(lines)


def run_edge_chaos(model, *, agents: int = 3, duration: float = 24.0,
                   grid_period: float = 0.25, seed: int = 0,
                   schedule: FaultSchedule | None = None,
                   workdir: str | None = None,
                   script: DriveScript | None = None) -> EdgeChaosReport:
    """Drive an edge fleet through scripted chaos and audit the invariants.

    The drive: every agent classifies a scripted drive locally and
    uploads verdicts; release v1 (the good model) rolls out at start;
    release v2 (good bytes) is corrupted in transit by the schedule and
    must be digest-rejected; a sabotaged v3 canary is published
    mid-drive and must be rolled back by its probe regression.

    Args:
        model: trained ensemble shared as the fleet's initial model.
        agents / duration / grid_period / seed: fleet and drive shape;
            the seed fixes traces, uplink loss and the sabotage
            permutation, so the run is reproducible end to end.
        schedule: fault script; :func:`standard_edge_schedule` default.
        workdir: scratch directory (spools, OTA state, releases); a
            temporary directory when omitted.
        script: drive behaviour script; standard all-behaviours default.
    """
    if agents < 1 or duration <= 0 or grid_period <= 0:
        raise ConfigurationError(
            "need agents >= 1, duration > 0, grid_period > 0")
    if schedule is None:
        schedule = standard_edge_schedule(duration)
    workspace = workdir or tempfile.mkdtemp(prefix="edge-chaos-")
    os.makedirs(workspace, exist_ok=True)
    rng = np.random.default_rng(seed)
    instants = np.arange(0.0, duration, grid_period)
    if script is None:
        behaviors = list(DrivingBehavior)
        segment = max(1.0, duration / len(behaviors) - 0.25)
        script = DriveScript.standard(segment_seconds=segment,
                                      gap_seconds=0.25)
    agent_ids = [f"edge-{i}" for i in range(agents)]

    # -- releases: v1 good, v2 good (corrupted in transit), v3 sabotaged --
    v1_dir = os.path.join(workspace, "release-v1")
    v2_dir = os.path.join(workspace, "release-v2")
    v3_dir = os.path.join(workspace, "release-v3")
    save_ensemble(model, v1_dir)
    save_ensemble(model, v2_dir)
    sabotage_release(v1_dir, v3_dir, rng=rng)

    # -- held-out probe set ------------------------------------------------
    # Drawn from the training distribution so the fleet baseline is well
    # above chance and a scrambled canary shows up as a real regression
    # (not just a violation of the manifest's absolute floor).
    probe_set = generate_driving_dataset(
        60, rng=np.random.default_rng(seed + 999))
    probe_images = probe_set.images
    probe_imu = probe_set.imu
    probe_labels = probe_set.labels
    zero_latency = (lambda model_, images_, imu_: 0.0)

    key = f"fleet-key-{seed}".encode("utf-8")
    server = OtaServer(key)
    server.publish("edge", v1_dir, canary_percent=100.0)
    release_bytes = sum(
        os.path.getsize(os.path.join(v1_dir, name))
        for name in os.listdir(v1_dir))
    # Slow the download to ~6 update ticks so a mid-download kill has a
    # real window to land in.
    chunk_size = max(4096, release_bytes // 6)
    canary_percent = minimal_canary_percent(3, agent_ids)
    publish_v2_at = 0.15 * duration
    publish_v3_at = 0.50 * duration

    journal = VerdictJournal(os.path.join(workspace, "controller.journal"))
    sink = StoreAndForwardSink(journal)
    health = HealthRegistry(degraded_after=4 * grid_period,
                            silent_after=12 * grid_period,
                            detector_factory=None)

    fleet: dict[str, EdgeAgent] = {}
    receivers: list[EdgeUplinkReceiver] = []
    links: dict[str, tuple] = {}
    update_interval = 2 * grid_period

    def build_ota(agent_id: str,
                  registry: ServingModelRegistry) -> OtaClient:
        return OtaClient(
            server, registry, name="edge", agent_id=agent_id, key=key,
            state_dir=os.path.join(workspace, f"state-{agent_id}"),
            probe_images=probe_images, probe_labels=probe_labels,
            probe_imu=probe_imu, latency_fn=zero_latency,
            chunk_size=chunk_size, chunks_per_step=1)

    for index, agent_id in enumerate(agent_ids):
        link_rng = np.random.default_rng(seed + 77 + index)
        sender, receiver = reliable_link(
            f"uplink-{agent_id}", base_latency=0.02, jitter=0.2,
            drop_probability=0.05, rng=link_rng,
            max_attempts=200, buffer_limit=256)
        links[agent_id] = (sender.data, sender.ack)
        registry = ServingModelRegistry()
        registry.register("edge", model)
        spool = EdgeSpool(os.path.join(workspace, f"spool-{agent_id}.wal"))
        uploader = EdgeUploader(spool, sender, agent_id=agent_id,
                                window=16)
        trace = synthesize_trace(
            index, instants, script=script,
            rng=np.random.default_rng(seed + 1000 + index))
        fleet[agent_id] = EdgeAgent(
            agent_id, registry=registry, spool=spool, uploader=uploader,
            trace=trace, instants=instants,
            ota=build_ota(agent_id, registry), health=health,
            intervals=(grid_period, grid_period, grid_period,
                       update_interval))
        receivers.append(EdgeUplinkReceiver(receiver, sink))

    harness = EdgeChaosHarness(
        schedule, server, fleet, links,
        rebuild_ota=lambda agent: build_ota(agent.agent_id,
                                            agent.registry))
    baseline_accuracy = float(np.mean(
        model.predict_degraded(images=probe_images, imu=probe_imu)
        .predictions == probe_labels))

    published = {2: False, 3: False}
    try:
        def tick(now: float) -> None:
            harness.apply(now)
            if not published[2] and now >= publish_v2_at:
                server.publish("edge", v2_dir, canary_percent=100.0)
                published[2] = True
            if not published[3] and now >= publish_v3_at:
                server.publish("edge", v3_dir,
                               canary_percent=canary_percent,
                               min_probe_accuracy=0.3)
                published[3] = True
            for agent in fleet.values():
                agent.step(now)
            for receiver in receivers:
                receiver.poll(now)
            sink.pump(now)
            health.step(now)

        for instant in instants:
            tick(float(instant))
        # Settle: no new drive samples, but keep the loops running until
        # the fleet is *quiescent* — spools drained and every updater
        # idle across two full update intervals, so a check fired while
        # idle and found nothing left to start.  (An instantaneous idle
        # reading is not enough: the tick after a rejection is idle, yet
        # the next check may still adopt a newer release.)
        now = float(duration)
        quiet_needed = int(np.ceil(2 * update_interval / grid_period)) + 1
        quiet = 0
        for _ in range(int(np.ceil(120.0 / grid_period))):
            tick(now)
            idle = (all(agent.spool.depth == 0
                        for agent in fleet.values())
                    and all(agent.ota.phase == IDLE
                            for agent in fleet.values()))
            quiet = quiet + 1 if idle else 0
            if quiet >= quiet_needed:
                break
            now += grid_period

        # -- audit ---------------------------------------------------------
        produced_ids = {
            (agent_id, sequence)
            for agent_id, agent in fleet.items()
            for sequence in range(1, agent._sequence + 1)
        }
        delivered_records = sink.delivered
        delivered_ids = {record.record_id for record in delivered_records}
        duplicates = len(delivered_records) - len(delivered_ids)
        lost = produced_ids - delivered_ids
        residue = sum(agent.spool.depth for agent in fleet.values())

        for agent in fleet.values():
            agent.close()
        journal.close()
        spool_torn = 0
        spool_truncated = 0
        for agent in fleet.values():
            replay = replay_spool(agent.spool.path)
            spool_torn += replay.torn
            spool_truncated += agent.spool.torn_truncated

        final_versions = {aid: agent.ota.pinned_version
                          for aid, agent in fleet.items()}
        final_accuracy = {
            aid: float(np.mean(
                agent.registry.get("edge").predict_degraded(
                    images=probe_images, imu=probe_imu)
                .predictions == probe_labels))
            for aid, agent in fleet.items()
        }
        installs = sum(agent.ota.installs for agent in fleet.values())
        rollbacks = sum(agent.ota.rollbacks for agent in fleet.values())
        rejections = sum(agent.ota.integrity_rejections
                         for agent in fleet.values())
        resumed = sum(agent.ota.bytes_resumed for agent in fleet.values())
        blackholes = sum(1 for entry in harness.log
                         if entry[1] == "uplink_blackhole"
                         and entry[3] == "on")

        violations: list[str] = []
        if lost:
            violations.append(
                f"{len(lost)} spooled records never reached the "
                f"controller (e.g. {sorted(lost)[:3]})")
        if duplicates:
            violations.append(
                f"{duplicates} duplicate downstream deliveries")
        if residue:
            violations.append(
                f"{residue} records still spooled after settle")
        if spool_torn:
            violations.append(
                f"{spool_torn} torn spool frames after a clean close")
        has_blackhole = any(e.kind == "uplink_blackhole"
                            for e in schedule.events)
        if has_blackhole and blackholes == 0:
            violations.append(
                "schedule has uplink_blackhole events but no uplink was "
                "blackholed (chaos did not engage)")
        corrupt_targets = {
            int(e.target) for e in schedule.events
            if e.kind == "ota_corrupt_artifact" and e.target != "*"}
        if corrupt_targets and rejections == 0:
            violations.append(
                "a corrupt release was served but never digest-rejected")
        for version in corrupt_targets:
            pinned = [aid for aid, v in final_versions.items()
                      if v == version]
            if pinned:
                violations.append(
                    f"corrupt release v{version} was installed by "
                    f"{pinned}")
        if published[3]:
            if rollbacks == 0:
                violations.append(
                    "the sabotaged canary was never rolled back")
            if 3 not in server.bad_versions:
                violations.append(
                    "the sabotaged canary was not marked bad fleet-wide")
            pinned_bad = [aid for aid, v in final_versions.items()
                          if v == 3]
            if pinned_bad:
                violations.append(
                    f"sabotaged release v3 stayed pinned on {pinned_bad}")
        has_kill = any(e.kind == "ota_download_kill"
                       for e in schedule.events)
        if has_kill and harness.kills == 0:
            violations.append(
                "schedule has ota_download_kill events but no updater "
                "was killed (chaos did not engage)")
        if harness.kills and resumed == 0:
            violations.append(
                "a killed download restarted from scratch instead of "
                "resuming")
        if installs == 0:
            violations.append("no agent ever installed a release")
        for agent_id, accuracy in final_accuracy.items():
            if accuracy < baseline_accuracy - 0.10:
                violations.append(
                    f"{agent_id} ended the drive serving a regressed "
                    f"model ({accuracy:.2f} vs baseline "
                    f"{baseline_accuracy:.2f})")

        return EdgeChaosReport(
            agents=agents, duration=float(duration), seed=seed,
            verdicts=sum(agent.verdicts for agent in fleet.values()),
            clips=sum(agent.clips for agent in fleet.values()),
            produced=len(produced_ids),
            delivered=len(delivered_ids),
            duplicates=duplicates,
            lost=len(lost),
            spool_torn=spool_torn,
            spool_truncated=spool_truncated,
            spool_residue=residue,
            uplink_blackholes=blackholes,
            ota_kills=harness.kills,
            ota_installs=installs,
            ota_rollbacks=rollbacks,
            integrity_rejections=rejections,
            bytes_resumed=resumed,
            bad_versions=sorted(server.bad_versions),
            final_versions=final_versions,
            final_accuracy=final_accuracy,
            baseline_accuracy=baseline_accuracy,
            violations=violations,
            harness_log=list(harness.log),
            metrics=get_registry().snapshot(),
        )
    finally:
        for agent in fleet.values():
            try:
                agent.close()
            except Exception:  # noqa: BLE001 — best-effort teardown
                pass
        journal.close()
