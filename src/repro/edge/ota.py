"""Over-the-air model rollout: canary cohorts, digest gates, auto-rollback.

The fleet-side :class:`OtaServer` publishes releases: a saved model-store
directory plus a signed :class:`~repro.edge.manifest.ReleaseManifest`
carrying per-file SHA-256 digests and the rollout policy (canary
percentage, probe-accuracy floor, latency ceiling).

The device-side :class:`OtaClient` is a small state machine driven by
the agent's updater loop::

    IDLE --check--> DOWNLOADING --all bytes--> VERIFYING
      ^                  |  (partial files persist; a killed download
      |                  |   resumes at the byte offset it died at)
      |                  v
      |             digest/signature bad? -> reject release, stay pinned
      |                  |
      |                  v ok
      |             SWAPPED (candidate hot-swapped via registry.swap)
      |                  |
      |        probe regression? --yes--> ROLLBACK (previous model
      |                  |                swapped back, release marked
      |                  no               bad fleet-wide)
      +------commit------+

Three invariants the chaos drive audits:

* bytes that fail their manifest digest are **never** loaded or swapped
  (``integrity_rejections`` counts the refusals);
* a mid-download kill resumes from the persisted partial files instead
  of restarting (``bytes_resumed`` counts the skipped bytes);
* a canary release whose live probe accuracy or latency regresses past
  the manifest's triggers is rolled back automatically and reported,
  so the rest of the fleet never installs it.
"""

from __future__ import annotations

import json
import os
import shutil
import time
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.core.model_store import file_digest, load_ensemble
from repro.edge.manifest import ReleaseManifest
from repro.exceptions import OtaError
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.serving.registry import ServingModelRegistry

#: Updater phases (:attr:`OtaClient.phase`).
IDLE = "idle"
DOWNLOADING = "downloading"
VERIFYING = "verifying"
SWAPPED = "swapped"


@dataclass
class _Release:
    manifest: ReleaseManifest
    directory: str
    bad: bool = False


class OtaServer:
    """Publishes signed releases and serves chunked artifact downloads.

    Args:
        key: fleet HMAC key manifests are signed with.
        corrupt_artifacts: chaos flag — when set, served chunks are
            bit-flipped *after* signing, modelling an artifact corrupted
            in transit or on the CDN; client digests must catch it.
    """

    def __init__(self, key: bytes, *,
                 registry: MetricsRegistry | None = None) -> None:
        self.key = key
        self.corrupt_artifacts = False
        #: Chaos: corrupt only these versions' chunks (additive with the
        #: global ``corrupt_artifacts`` flag).
        self.corrupt_versions: set[int] = set()
        self._releases: dict[int, _Release] = {}
        self._next_version = 1
        registry = registry or get_registry()
        self._obs_published = registry.counter(
            "edge_ota_published_total", "Releases published to the fleet")
        self._obs_marked_bad = registry.counter(
            "edge_ota_marked_bad_total",
            "Releases withdrawn after a device reported a rollback")

    def publish(self, name: str, directory: str, *,
                canary_percent: float = 100.0,
                min_probe_accuracy: float = 0.0,
                max_latency_factor: float = 3.0) -> ReleaseManifest:
        """Sign and publish the saved ensemble at ``directory``."""
        artifacts = {
            filename: file_digest(os.path.join(directory, filename))
            for filename in sorted(os.listdir(directory))
            if os.path.isfile(os.path.join(directory, filename))
        }
        if "manifest.json" not in artifacts:
            raise OtaError(
                f"{directory!r} is not a saved model store directory "
                "(no manifest.json)")
        manifest = ReleaseManifest(
            name=name, version=self._next_version, artifacts=artifacts,
            canary_percent=canary_percent,
            min_probe_accuracy=min_probe_accuracy,
            max_latency_factor=max_latency_factor).signed(self.key)
        self._releases[manifest.version] = _Release(manifest, directory)
        self._next_version += 1
        self._obs_published.inc()
        return manifest

    def latest(self, agent_id: str,
               exclude: set[int] = frozenset()) -> ReleaseManifest | None:
        """The newest live release this agent is allowed to install.

        Canary gating happens here: a release rolled out at N% is only
        advertised to agents in its deterministic canary cohort; everyone
        else keeps seeing the previous full release until the canary
        graduates (is re-published at 100%).

        ``exclude`` carries the versions the asking device has refused
        (failed digests, rolled back locally), so a client stuck behind
        a corrupt release is offered the newest one below it instead of
        the same bad bytes forever.
        """
        for version in sorted(self._releases, reverse=True):
            if version in exclude:
                continue
            release = self._releases[version]
            if release.bad:
                continue
            if release.manifest.in_canary(agent_id):
                return release.manifest
        return None

    def fetch(self, version: int, filename: str, offset: int,
              size: int) -> bytes:
        """One chunk of an artifact (the resumable download primitive)."""
        release = self._releases.get(version)
        if release is None:
            raise OtaError(f"no release v{version}")
        if filename not in release.manifest.artifacts:
            raise OtaError(f"release v{version} has no artifact {filename!r}")
        path = os.path.join(release.directory, filename)
        with open(path, "rb") as handle:
            handle.seek(offset)
            chunk = handle.read(size)
        if chunk and (self.corrupt_artifacts
                      or version in self.corrupt_versions):
            # Flip one byte per served chunk: digests must reject this.
            corrupted = bytearray(chunk)
            corrupted[0] ^= 0xFF
            chunk = bytes(corrupted)
        return chunk

    def artifact_size(self, version: int, filename: str) -> int:
        release = self._releases.get(version)
        if release is None:
            raise OtaError(f"no release v{version}")
        return os.path.getsize(os.path.join(release.directory, filename))

    def mark_bad(self, version: int) -> None:
        """A device rolled this release back; withdraw it fleet-wide."""
        release = self._releases.get(version)
        if release is not None and not release.bad:
            release.bad = True
            self._obs_marked_bad.inc()

    @property
    def bad_versions(self) -> set[int]:
        return {v for v, r in self._releases.items() if r.bad}


@dataclass
class ProbeResult:
    """One held-out probe evaluation of a live model."""

    accuracy: float
    latency: float


def _default_probe_latency(model: Any, images: np.ndarray,
                           imu: np.ndarray | None) -> float:
    start = time.perf_counter()
    model.predict_degraded(images=images, imu=imu)
    return time.perf_counter() - start


class OtaClient:
    """Device-side updater: check, download (resumably), verify, swap.

    Args:
        server: the fleet OTA endpoint.
        registry: the device's serving-model registry; accepted releases
            land via :meth:`~ServingModelRegistry.swap` on ``name``.
        name: registry variant this updater manages.
        agent_id: identity used for canary cohort membership.
        key: fleet HMAC key for manifest signature verification.
        state_dir: durable scratch directory — partial downloads, the
            pin file and the refused-release set live here and survive
            a process kill.
        probe_images / probe_labels / probe_imu: held-out probe set the
            rollback triggers evaluate against.
        latency_fn: probe latency measurement, injectable so tests and
            the chaos drive stay deterministic; defaults to wall-clock
            around one probe batch.
        chunk_size / chunks_per_step: download granularity — one updater
            step moves at most ``chunks_per_step * chunk_size`` bytes,
            so a kill mid-release reliably lands between chunks.
        accuracy_slack: tolerated probe-accuracy drop vs the incumbent
            before the regression trigger fires.
    """

    def __init__(self, server: OtaServer, registry: ServingModelRegistry,
                 *, name: str, agent_id: str, key: bytes, state_dir: str,
                 probe_images: np.ndarray, probe_labels: np.ndarray,
                 probe_imu: np.ndarray | None = None,
                 latency_fn: Callable[..., float] | None = None,
                 chunk_size: int = 4096, chunks_per_step: int = 8,
                 accuracy_slack: float = 0.05,
                 metrics: MetricsRegistry | None = None) -> None:
        self.server = server
        self.registry = registry
        self.name = name
        self.agent_id = agent_id
        self.key = key
        self.state_dir = str(state_dir)
        os.makedirs(self.state_dir, exist_ok=True)
        self.probe_images = probe_images
        self.probe_labels = probe_labels
        self.probe_imu = probe_imu
        self.latency_fn = latency_fn or _default_probe_latency
        self.chunk_size = int(chunk_size)
        self.chunks_per_step = int(chunks_per_step)
        self.accuracy_slack = float(accuracy_slack)
        self.phase = IDLE
        self.pinned_version = self._load_pin()
        self.rejected: set[int] = self._load_rejected()
        self.integrity_rejections = 0
        self.rollbacks = 0
        self.installs = 0
        self.bytes_resumed = 0
        self._target: ReleaseManifest | None = None
        self._previous_model: Any = None
        self._baseline: ProbeResult | None = None
        self.last_probe: ProbeResult | None = None
        self.last_rollback: str = ""
        metrics = metrics or get_registry()
        self._obs_checks = metrics.counter(
            "edge_ota_checks_total", "Update checks against the OTA server",
            agent=agent_id)
        self._obs_rejections = metrics.counter(
            "edge_ota_integrity_rejections_total",
            "Releases refused because a digest or signature failed",
            agent=agent_id)
        self._obs_installs = metrics.counter(
            "edge_ota_installs_total", "Releases hot-swapped into serving",
            agent=agent_id)
        self._obs_rollbacks = metrics.counter(
            "edge_ota_rollbacks_total",
            "Installed releases rolled back by a probe regression",
            agent=agent_id)
        self._obs_resumed = metrics.gauge(
            "edge_ota_bytes_resumed", "Download bytes skipped via resume",
            agent=agent_id)

    # -- pin persistence ---------------------------------------------------
    @property
    def _pin_path(self) -> str:
        return os.path.join(self.state_dir, "pinned.json")

    def _load_pin(self) -> int:
        try:
            with open(self._pin_path, encoding="utf-8") as handle:
                return int(json.load(handle)["version"])
        except (OSError, ValueError, KeyError):
            return 0

    def _save_pin(self) -> None:
        tmp = self._pin_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump({"version": self.pinned_version}, handle)
        os.replace(tmp, self._pin_path)

    @property
    def _rejected_path(self) -> str:
        return os.path.join(self.state_dir, "rejected.json")

    def _load_rejected(self) -> set[int]:
        try:
            with open(self._rejected_path, encoding="utf-8") as handle:
                return {int(v) for v in json.load(handle)["versions"]}
        except (OSError, ValueError, KeyError, TypeError):
            return set()

    def _save_rejected(self) -> None:
        # Refusals must survive restarts: a device that forgot it
        # digest-rejected a corrupt release would re-download and
        # re-reject the same bytes forever while the server (which only
        # learns of rollbacks via mark_bad) keeps advertising it.
        tmp = self._rejected_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump({"versions": sorted(self.rejected)}, handle)
        os.replace(tmp, self._rejected_path)

    # -- state machine -----------------------------------------------------
    def step(self, now: float) -> str:
        """Advance the updater one tick; returns the phase after the tick."""
        del now  # phases are event-driven; no wall timers
        if self.phase == IDLE:
            self._check()
        elif self.phase == DOWNLOADING:
            self._download_some()
        elif self.phase == VERIFYING:
            self._verify_and_swap()
        elif self.phase == SWAPPED:
            self._probe_and_commit()
        return self.phase

    def _check(self) -> None:
        self._obs_checks.inc()
        manifest = self.server.latest(self.agent_id, self.rejected)
        if manifest is None or manifest.version <= self.pinned_version:
            return
        try:
            manifest.verify_signature(self.key)
        except OtaError:
            self._reject(manifest.version)
            return
        self._target = manifest
        self.phase = DOWNLOADING
        # A process killed mid-download left partial files in the stage
        # directory; count what this incarnation will *not* re-fetch.
        stage = self._stage_dir(manifest.version)
        if os.path.isdir(stage):
            resumed = sum(
                os.path.getsize(os.path.join(stage, f))
                for f in manifest.artifacts
                if os.path.exists(os.path.join(stage, f)))
            if resumed:
                self.bytes_resumed += resumed
                self._obs_resumed.set(self.bytes_resumed)

    def _stage_dir(self, version: int) -> str:
        return os.path.join(self.state_dir, f"stage-v{version}")

    def _download_some(self) -> None:
        manifest = self._target
        if manifest is None:  # killed and rebuilt mid-phase; re-check
            self.phase = IDLE
            return
        stage = self._stage_dir(manifest.version)
        os.makedirs(stage, exist_ok=True)
        budget = self.chunks_per_step
        for filename in sorted(manifest.artifacts):
            if budget <= 0:
                return
            path = os.path.join(stage, filename)
            total = self.server.artifact_size(manifest.version, filename)
            have = os.path.getsize(path) if os.path.exists(path) else 0
            while have < total and budget > 0:
                chunk = self.server.fetch(manifest.version, filename,
                                          have, self.chunk_size)
                if not chunk:
                    break
                with open(path, "ab") as handle:
                    handle.write(chunk)
                have += len(chunk)
                budget -= 1
        if all(os.path.exists(os.path.join(stage, f))
               and os.path.getsize(os.path.join(stage, f))
               >= self.server.artifact_size(manifest.version, f)
               for f in manifest.artifacts):
            self.phase = VERIFYING

    def _verify_and_swap(self) -> None:
        manifest = self._target
        assert manifest is not None
        stage = self._stage_dir(manifest.version)
        try:
            for filename in sorted(manifest.artifacts):
                with open(os.path.join(stage, filename), "rb") as handle:
                    manifest.verify_artifact(filename, handle.read())
            # load_ensemble re-verifies the store's own digests — two
            # independent gates between corrupt bytes and live weights.
            candidate = load_ensemble(stage)
        except Exception:  # noqa: BLE001 — any staged defect means reject
            self._reject(manifest.version, purge_stage=True)
            return
        self._previous_model = self.registry.get(self.name)
        self._baseline = self._probe(self._previous_model)
        self.registry.swap(self.name, candidate)
        self.phase = SWAPPED

    def _probe_and_commit(self) -> None:
        manifest = self._target
        assert manifest is not None and self._baseline is not None
        result = self._probe(self.registry.get(self.name))
        floor = max(manifest.min_probe_accuracy,
                    self._baseline.accuracy - self.accuracy_slack)
        latency_ceiling = (manifest.max_latency_factor
                           * max(self._baseline.latency, 1e-9))
        if result.accuracy < floor or result.latency > latency_ceiling:
            self._rollback(manifest, result, floor, latency_ceiling)
            return
        self.pinned_version = manifest.version
        self._save_pin()
        self._purge_stages(manifest.version)
        self.installs += 1
        self._obs_installs.inc()
        self.last_probe = result
        self._target = None
        self._previous_model = None
        self.phase = IDLE

    def _rollback(self, manifest: ReleaseManifest, result: ProbeResult,
                  floor: float, latency_ceiling: float) -> None:
        self.registry.swap(self.name, self._previous_model)
        self.server.mark_bad(manifest.version)
        self.rejected.add(manifest.version)
        self._save_rejected()
        # Only this release's stage is garbage; partial downloads of
        # *older* versions may still be resumed (the client falls back
        # to the newest release below the rejected one).
        shutil.rmtree(self._stage_dir(manifest.version),
                      ignore_errors=True)
        self.rollbacks += 1
        self._obs_rollbacks.inc()
        self.last_rollback = (
            f"v{manifest.version}: probe accuracy {result.accuracy:.3f} "
            f"(floor {floor:.3f}), latency {result.latency:.4f}s "
            f"(ceiling {latency_ceiling:.4f}s)")
        self._target = None
        self._previous_model = None
        self.phase = IDLE

    def _reject(self, version: int, *, purge_stage: bool = False) -> None:
        self.rejected.add(version)
        self._save_rejected()
        self.integrity_rejections += 1
        self._obs_rejections.inc()
        if purge_stage:
            stage = self._stage_dir(version)
            if os.path.isdir(stage):
                for filename in os.listdir(stage):
                    os.unlink(os.path.join(stage, filename))
                os.rmdir(stage)
        self._target = None
        self.phase = IDLE

    def _purge_stages(self, up_to: int) -> None:
        """Drop stage directories for releases at or below ``up_to``.

        Called on commit: the installed release no longer needs its
        staged artifacts, and ``_check`` never adopts a version at or
        below the pin, so older leftovers can never be resumed again —
        without this a device accretes one full model copy per release
        it ever took, unbounded disk growth across a fleet's lifetime.
        """
        for entry in os.listdir(self.state_dir):
            if not entry.startswith("stage-v"):
                continue
            try:
                version = int(entry[len("stage-v"):])
            except ValueError:
                continue
            if version <= up_to:
                shutil.rmtree(os.path.join(self.state_dir, entry),
                              ignore_errors=True)

    def _probe(self, model: Any) -> ProbeResult:
        prediction = model.predict_degraded(images=self.probe_images,
                                            imu=self.probe_imu)
        accuracy = float(np.mean(
            prediction.predictions == self.probe_labels))
        latency = float(self.latency_fn(model, self.probe_images,
                                        self.probe_imu))
        return ProbeResult(accuracy=accuracy, latency=latency)
