"""Edge agent runtime: on-device inference, store-and-forward, OTA.

The device half of the DarNet deployment story: an
:class:`~repro.edge.agent.EdgeAgent` classifies its own drive locally
(at its privacy level, through the same ensemble the server uses),
spools verdicts durably across uplink loss, and keeps its model current
through signed, digest-verified OTA releases with canary rollout and
automatic probe-regression rollback.
"""

from repro.edge.agent import WINDOW_STEPS, EdgeAgent
from repro.edge.chaos import (
    EdgeChaosHarness,
    EdgeChaosReport,
    run_edge_chaos,
    sabotage_release,
    standard_edge_schedule,
)
from repro.edge.manifest import ReleaseManifest
from repro.edge.ota import OtaClient, OtaServer, ProbeResult
from repro.edge.spool import (
    KIND_CLIP,
    KIND_VERDICT,
    EdgeSpool,
    SpoolRecord,
    SpoolReplay,
    replay_spool,
)
from repro.edge.supervisor import SupervisedTask, TaskSupervisor
from repro.edge.uploader import (
    EdgeUplinkReceiver,
    EdgeUploader,
    verdict_from_spool,
)

__all__ = [
    "EdgeAgent",
    "EdgeChaosHarness",
    "EdgeChaosReport",
    "EdgeSpool",
    "EdgeUplinkReceiver",
    "EdgeUploader",
    "KIND_CLIP",
    "KIND_VERDICT",
    "OtaClient",
    "OtaServer",
    "ProbeResult",
    "ReleaseManifest",
    "SpoolRecord",
    "SpoolReplay",
    "SupervisedTask",
    "TaskSupervisor",
    "WINDOW_STEPS",
    "replay_spool",
    "run_edge_chaos",
    "sabotage_release",
    "standard_edge_schedule",
    "verdict_from_spool",
]
