"""Resumable uplink: drains the edge spool over the reliable transport.

The uploader is the bridge between two exactly-once half-promises:

* the **spool** (:mod:`repro.edge.spool`) guarantees a verdict framed to
  disk is never lost — but knows nothing about the network;
* the **reliable sender** (:mod:`repro.streaming.reliability`) retries
  and acks individual packets — but abandons a packet after
  ``max_attempts`` and sheds under buffer pressure.

:class:`EdgeUploader` closes the gap: a spool record is marked uploaded
*only* when the transport acked the packet carrying it (the sender's
``on_ack`` hook), and a packet the sender gave up on (``on_drop``)
simply returns the record to the eligible set, to be re-sent on a later
step.  During an uplink blackhole nothing acks, the in-flight window
fills, and new verdicts accumulate in the spool; on reconnect the
backlog drains oldest-first and the controller dedups by
``(agent_id, sequence)`` — the end-to-end result is exactly-once.

:class:`EdgeUplinkReceiver` is the controller half: it polls the
reliable receiver and offers every arriving record into the serving
tier's :class:`~repro.serving.journal.StoreAndForwardSink`, so edge
verdicts land in the same durable journal / downstream-delivery path as
server-side verdicts.
"""

from __future__ import annotations

from repro.edge.spool import EdgeSpool, SpoolRecord
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.serving.journal import StoreAndForwardSink, VerdictRecord
from repro.streaming.reliability import ReliableReceiver, ReliableSender


class EdgeUploader:
    """Pumps unacknowledged spool records through a reliable sender.

    Args:
        spool: the durable upload queue.
        sender: reliable transport endpoint (its ``on_ack`` / ``on_drop``
            hooks are claimed by the uploader).
        agent_id: source address stamped on uplink packets.
        controller: destination address.
        window: maximum records in flight at once; bounds how much the
            transport buffers and keeps the blackhole backlog on disk,
            where it is durable, instead of in the send buffer, where
            shedding could churn it.
    """

    def __init__(self, spool: EdgeSpool, sender: ReliableSender, *,
                 agent_id: str, controller: str = "controller",
                 window: int = 16,
                 registry: MetricsRegistry | None = None) -> None:
        self.spool = spool
        self.sender = sender
        self.agent_id = agent_id
        self.controller = controller
        self.window = int(window)
        self.drops = 0
        self._inflight: dict[int, int] = {}     # sender seq -> record seq
        self._inflight_records: set[int] = set()
        sender.on_ack = self._on_ack
        sender.on_drop = self._on_drop
        registry = registry or get_registry()
        self._obs_inflight = registry.gauge(
            "edge_upload_inflight", "Spool records riding the uplink",
            agent=agent_id)
        self._obs_uploaded = registry.counter(
            "edge_uploaded_total", "Spool records acked by the controller",
            agent=agent_id)
        self._obs_drops = registry.counter(
            "edge_upload_drops_total",
            "Uplink packets the transport gave up on (record re-queued)",
            agent=agent_id)

    @property
    def inflight(self) -> int:
        """Records currently riding the transport."""
        return len(self._inflight)

    def step(self, now: float) -> int:
        """Process acks/retransmits, then launch new uploads; returns sends.

        Oldest spooled records go first, skipping anything already in
        flight, until the in-flight window is full.
        """
        self.sender.step(now)
        sent = 0
        for record in self.spool.pending():
            if len(self._inflight) >= self.window:
                break
            if record.sequence in self._inflight_records:
                continue
            packet_seq = self.sender.send(self.agent_id, self.controller,
                                          record, now)
            self._inflight[packet_seq] = record.sequence
            self._inflight_records.add(record.sequence)
            sent += 1
        self._obs_inflight.set(len(self._inflight))
        return sent

    # -- transport hooks ---------------------------------------------------
    def _on_ack(self, packet_seq: int) -> None:
        record_seq = self._inflight.pop(packet_seq, None)
        if record_seq is None:
            return
        self._inflight_records.discard(record_seq)
        self.spool.ack(record_seq)
        self._obs_uploaded.inc()
        self._obs_inflight.set(len(self._inflight))

    def _on_drop(self, packet_seq: int, reason: str) -> None:
        del reason  # abandoned and shed packets re-queue identically
        record_seq = self._inflight.pop(packet_seq, None)
        if record_seq is None:
            return
        # The record stays in the spool's pending set; clearing the
        # in-flight mark makes the next step() re-send it fresh.
        self._inflight_records.discard(record_seq)
        self.drops += 1
        self._obs_drops.inc()
        self._obs_inflight.set(len(self._inflight))


def verdict_from_spool(record: SpoolRecord) -> VerdictRecord:
    """Map an uploaded edge record into the serving journal's schema.

    The agent id becomes the session id, so the journal's
    ``(session_id, sequence)`` dedup identity is exactly the spool's
    ``(agent_id, sequence)`` — a record retransmitted over the flaky
    uplink or replayed after a device crash lands downstream once.
    """
    return VerdictRecord(
        session_id=record.agent_id, sequence=record.sequence,
        timestamp=record.timestamp, kind=record.kind,
        predicted=record.predicted, confidence=record.confidence,
        degraded=record.degraded, model_key=f"ota-v{record.model_version}",
        reason="evidence-clip" if record.kind == "clip" else "")


class EdgeUplinkReceiver:
    """Controller-side terminus: uplink packets into the verdict journal.

    Args:
        receiver: reliable transport endpoint for this agent's uplink.
        sink: the serving tier's store-and-forward sink; every arriving
            record is journaled and forwarded through it, giving edge
            verdicts the same durability/delivery path as server-side
            ones.
    """

    def __init__(self, receiver: ReliableReceiver,
                 sink: StoreAndForwardSink, *,
                 registry: MetricsRegistry | None = None) -> None:
        self.receiver = receiver
        self.sink = sink
        self.received = 0
        registry = registry or get_registry()
        self._obs_received = registry.counter(
            "edge_uplink_received_total",
            "Edge records accepted by the controller uplink")

    def poll(self, now: float) -> list[SpoolRecord]:
        """Drain the uplink; journal + forward everything that arrived."""
        records: list[SpoolRecord] = []
        for message in self.receiver.poll(now):
            record = message.payload
            if not isinstance(record, SpoolRecord):
                continue  # not ours; fault-injected garbage is ignored
            records.append(record)
            self.sink.offer(verdict_from_spool(record))
            self.received += 1
            self._obs_received.inc()
        if records:
            self.sink.pump(now)
        return records
