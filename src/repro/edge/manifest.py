"""Signed OTA release manifests: what an edge agent may install, and why.

A model update that reaches a vehicle fleet is an attack surface and a
reliability hazard at the same time, so every release travels as a
:class:`ReleaseManifest` that makes both risks checkable *before* any
weights are swapped in:

* **content digests** — the manifest lists the SHA-256 of every artifact
  file (reusing :func:`repro.core.model_store.artifact_digests`); a
  downloaded artifact that does not hash to its manifest entry is
  rejected, so a corrupt or tampered download can never be loaded;
* **signature** — the manifest itself is HMAC-SHA256 signed over its
  canonical JSON form with a fleet key provisioned on the device; an
  unsigned or re-signed manifest is refused at check time, before any
  bytes are downloaded;
* **rollout policy** — ``canary_percent`` bounds the blast radius (only
  the deterministic canary cohort installs the release first) and
  ``min_probe_accuracy`` / ``max_latency_factor`` are the *rollback
  triggers* the updater enforces against its held-out probe set.
"""

from __future__ import annotations

import hashlib
import hmac
import json
from dataclasses import asdict, dataclass, field, replace

from repro.exceptions import OtaError


@dataclass(frozen=True)
class ReleaseManifest:
    """One published model release, as the OTA server advertises it."""

    name: str                    #: registry variant the release replaces
    version: int                 #: monotonically increasing release id
    artifacts: dict[str, str] = field(default_factory=dict)
    canary_percent: float = 100.0
    min_probe_accuracy: float = 0.0
    max_latency_factor: float = 3.0
    signature: str = ""

    def __post_init__(self) -> None:
        if self.version < 1:
            raise OtaError(f"release version must be >= 1, got {self.version}")
        if not 0.0 <= self.canary_percent <= 100.0:
            raise OtaError(
                f"canary_percent must be in [0, 100], got "
                f"{self.canary_percent}")
        if self.max_latency_factor <= 0:
            raise OtaError("max_latency_factor must be positive")

    # -- canonical form / signing ----------------------------------------
    def canonical_payload(self) -> bytes:
        """The signed byte form: sorted-key JSON minus the signature."""
        body = asdict(self)
        body.pop("signature")
        return json.dumps(body, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")

    def signed(self, key: bytes) -> "ReleaseManifest":
        """A copy carrying a valid HMAC-SHA256 signature under ``key``."""
        mac = hmac.new(key, self.canonical_payload(), hashlib.sha256)
        return replace(self, signature=mac.hexdigest())

    def verify_signature(self, key: bytes) -> None:
        """Raise :class:`OtaError` unless the signature checks out."""
        if not self.signature:
            raise OtaError(
                f"release {self.name} v{self.version} is unsigned")
        expected = hmac.new(key, self.canonical_payload(),
                            hashlib.sha256).hexdigest()
        if not hmac.compare_digest(expected, self.signature):
            raise OtaError(
                f"release {self.name} v{self.version} signature does not "
                "verify under the fleet key")

    def verify_artifact(self, filename: str, blob: bytes) -> None:
        """Raise :class:`OtaError` unless ``blob`` hashes to the manifest."""
        expected = self.artifacts.get(filename)
        if expected is None:
            raise OtaError(
                f"release v{self.version} lists no artifact {filename!r}")
        actual = hashlib.sha256(blob).hexdigest()
        if actual != expected:
            raise OtaError(
                f"artifact {filename!r} of release v{self.version} is "
                f"corrupt: manifest says {expected[:12]}..., bytes hash "
                f"to {actual[:12]}...")

    # -- canary cohort ----------------------------------------------------
    def in_canary(self, agent_id: str) -> bool:
        """Whether ``agent_id`` belongs to this release's canary cohort.

        The cohort is a deterministic hash bucket over (agent, version):
        the same agent lands in the same bucket on every check of the
        same release, but rolls a fresh bucket for the next release, so
        no vehicle is permanently the fleet's guinea pig.
        """
        if self.canary_percent >= 100.0:
            return True
        digest = hashlib.sha256(
            f"{agent_id}#{self.version}".encode("utf-8")).digest()
        bucket = int.from_bytes(digest[:4], "big") % 10_000
        return bucket < self.canary_percent * 100.0

    # -- wire form --------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "ReleaseManifest":
        try:
            data = json.loads(payload)
            return cls(name=data["name"], version=int(data["version"]),
                       artifacts=dict(data["artifacts"]),
                       canary_percent=float(data["canary_percent"]),
                       min_probe_accuracy=float(data["min_probe_accuracy"]),
                       max_latency_factor=float(data["max_latency_factor"]),
                       signature=data.get("signature", ""))
        except (ValueError, KeyError, TypeError) as error:
            raise OtaError(f"malformed release manifest: {error}") from error
