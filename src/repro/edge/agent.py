"""The on-device agent: local inference, durable spooling, supervised loops.

:class:`EdgeAgent` is the paper's phone/dashcam side grown into a small
runtime.  Instead of streaming raw sensor data to the controller and
waiting for server verdicts, the agent classifies **locally** — at its
configured privacy level, through the same dCNN ensemble the server
would use — and uploads *verdicts* (plus small evidence clips for
non-normal behaviour), which survive uplink loss in the disk spool.

Four loops run under the :class:`~repro.edge.supervisor.TaskSupervisor`:

========  ====================================================
sensor    consume the drive's IMU rows / camera frames up to ``now``
infer     distort at the privacy level, run ``predict_degraded`` on the
          rolling IMU window + latest frame, spool the verdict (and an
          evidence clip when the verdict is not NORMAL)
upload    drain the spool through the reliable uplink
update    advance the OTA state machine (check/download/verify/swap)
========  ====================================================

Each loop heartbeats into a :class:`~repro.streaming.health.HealthRegistry`
under ``<agent>/<loop>``, so a wedged loop is visible as DEGRADED/SILENT
while the others keep running.
"""

from __future__ import annotations

import numpy as np

from repro.core.privacy import PrivacyLevel, distort_restore
from repro.datasets.classes import DrivingBehavior
from repro.edge.ota import OtaClient
from repro.edge.spool import KIND_CLIP, EdgeSpool, SpoolRecord
from repro.edge.supervisor import TaskSupervisor
from repro.edge.uploader import EdgeUploader
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.tracing import Tracer
from repro.serving.registry import ServingModelRegistry
from repro.serving.replay import DriverTrace
from repro.streaming.health import HealthRegistry

#: IMU window length the ensemble's RNN expects (matches serving).
WINDOW_STEPS = 20

#: Evidence clips ship a 16x16 uint8 thumbnail of the distorted frame.
CLIP_STRIDE = 4


class EdgeAgent:
    """One vehicle's on-device runtime.

    Args:
        agent_id: fleet identity (uplink source address, canary cohort).
        registry: the device's model registry; the OTA client hot-swaps
            into it, the infer loop routes through it by privacy level.
        spool / uploader: durable store-and-forward pipeline.
        trace: pre-synthesized drive (one IMU row + frame per instant).
        instants: grid timestamps aligned with ``trace``.
        privacy: distortion level frames are degraded to before
            inference (``None`` = full fidelity).
        ota: OTA updater; ``None`` runs a fixed model.
        health: liveness registry the loop heartbeats land in.
        intervals: per-loop periods ``(sensor, infer, upload, update)``.
    """

    def __init__(self, agent_id: str, *, registry: ServingModelRegistry,
                 spool: EdgeSpool, uploader: EdgeUploader,
                 trace: DriverTrace, instants: np.ndarray,
                 privacy: PrivacyLevel | None = None,
                 ota: OtaClient | None = None,
                 health: HealthRegistry | None = None,
                 intervals: tuple[float, float, float, float]
                 = (0.05, 0.25, 0.1, 1.0),
                 tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        self.agent_id = agent_id
        self.registry = registry
        self.spool = spool
        self.uploader = uploader
        self.trace = trace
        self.instants = np.asarray(instants, dtype=np.float64)
        self.privacy = privacy
        self.ota = ota
        self.tracer = tracer or Tracer(enabled=False)
        self.verdicts = 0
        self.clips = 0
        # Resume numbering past everything the spool has ever carried:
        # a restarted agent reusing a sequence would collide with its
        # previous incarnation and be deduped downstream — silent loss.
        self._sequence = spool.last_sequence
        self._cursor = 0
        self._inferred_through = 0
        self._imu_rows: list[np.ndarray] = []
        self._latest_frame: np.ndarray | None = None
        metrics = metrics or get_registry()
        self._obs_verdicts = metrics.counter(
            "edge_verdicts_total", "Verdicts produced on-device",
            agent=agent_id)
        self._obs_clips = metrics.counter(
            "edge_clips_total", "Evidence clips spooled for upload",
            agent=agent_id)
        self._obs_confidence = metrics.histogram(
            "edge_verdict_confidence", "On-device verdict confidence",
            agent=agent_id)
        sensor_dt, infer_dt, upload_dt, update_dt = intervals
        self.supervisor = TaskSupervisor(agent_id, health=health,
                                         registry=metrics)
        self.supervisor.add_task("sensor", self._sensor_loop, sensor_dt)
        self.supervisor.add_task("infer", self._infer_loop, infer_dt)
        self.supervisor.add_task("upload", self._upload_loop, upload_dt)
        if ota is not None:
            self.supervisor.add_task("update", self._update_loop, update_dt)

    # -- driving -----------------------------------------------------------
    def step(self, now: float) -> int:
        """Advance every due loop; returns how many ran."""
        return self.supervisor.step(now)

    @property
    def model_version(self) -> int:
        return self.ota.pinned_version if self.ota is not None else 0

    # -- loops -------------------------------------------------------------
    def _sensor_loop(self, now: float) -> None:
        """Consume drive samples up to ``now`` into the rolling buffers."""
        while (self._cursor < len(self.instants)
               and self.instants[self._cursor] <= now):
            k = self._cursor
            self._imu_rows.append(np.asarray(self.trace.imu[k],
                                             dtype=np.float64))
            if len(self._imu_rows) > WINDOW_STEPS:
                del self._imu_rows[0]
            self._latest_frame = np.asarray(self.trace.frames[k],
                                            dtype=np.float32)
            self._cursor += 1

    def _infer_loop(self, now: float) -> None:
        """Classify the current window locally and spool the verdict."""
        if not self._imu_rows or self._latest_frame is None:
            return
        if self._cursor == self._inferred_through:
            return  # no new sensor samples since the last verdict
        self._inferred_through = self._cursor
        trace_id = self.tracer.start(f"edge:{self.agent_id}")
        with self.tracer.span(trace_id, "distort"):
            images = distort_restore(
                self._latest_frame[None, None, :, :], self.privacy)
        with self.tracer.span(trace_id, "infer"):
            rows = self._imu_rows
            if len(rows) < WINDOW_STEPS:
                rows = [rows[0]] * (WINDOW_STEPS - len(rows)) + rows
            window = np.stack(rows)[None, :, :]
            level = self.privacy.value if self.privacy is not None else None
            model = self.registry.get(self.registry.route(level))
            prediction = model.predict_degraded(images=images, imu=window)
        predicted = int(prediction.predictions[0])
        confidence = float(prediction.confidence[0])
        with self.tracer.span(trace_id, "spool"):
            self._sequence += 1
            self.spool.append(SpoolRecord(
                agent_id=self.agent_id, sequence=self._sequence,
                timestamp=now, predicted=predicted, confidence=confidence,
                degraded=bool(prediction.degraded),
                model_version=self.model_version))
            self.verdicts += 1
            self._obs_verdicts.inc()
            self._obs_confidence.observe(confidence)
            if predicted != int(DrivingBehavior.NORMAL):
                self._spool_clip(now, predicted, confidence, images[0, 0])
        self.tracer.finish(trace_id)

    def _spool_clip(self, now: float, predicted: int, confidence: float,
                    frame: np.ndarray) -> None:
        """Queue a thumbnail of the (already privacy-distorted) frame."""
        thumb = np.clip(frame[::CLIP_STRIDE, ::CLIP_STRIDE] * 255.0,
                        0, 255).astype(np.uint8)
        self._sequence += 1
        self.spool.append(SpoolRecord(
            agent_id=self.agent_id, sequence=self._sequence,
            timestamp=now, kind=KIND_CLIP, predicted=predicted,
            confidence=confidence, model_version=self.model_version,
            payload=thumb.tobytes().hex()))
        self.clips += 1
        self._obs_clips.inc()

    def _upload_loop(self, now: float) -> None:
        self.uploader.step(now)

    def _update_loop(self, now: float) -> None:
        assert self.ota is not None
        self.ota.step(now)

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        self.spool.close()

    def report(self) -> dict:
        """Per-agent summary for drive reports and the chaos audit."""
        summary = {
            "agent_id": self.agent_id,
            "verdicts": self.verdicts,
            "clips": self.clips,
            "spool_depth": self.spool.depth,
            "uploaded": self.spool.acked,
            "model_version": self.model_version,
            "tasks": self.supervisor.report(),
        }
        if self.ota is not None:
            summary["ota"] = {
                "pinned_version": self.ota.pinned_version,
                "installs": self.ota.installs,
                "rollbacks": self.ota.rollbacks,
                "integrity_rejections": self.ota.integrity_rejections,
                "bytes_resumed": self.ota.bytes_resumed,
            }
        return summary
